// Deliberate interprocedural violations: under -interproc the
// allocation in deep must be reported with the multi-frame call path
// from the annotated root, and the stale noallocprop suppression must
// be flagged as unused — but only when that analyzer actually runs.
package seeded

import "fmt"

//ldlint:noalloc
func entry(n int) {
	mid(n)
}

func mid(n int) {
	deep(n)
}

func deep(n int) {
	sink = fmt.Sprint(n)
}

//ldlint:ignore noallocprop stale exemption: nothing interprocedural fires on this function anymore
func tidy() {}
