module escapefix

go 1.24
