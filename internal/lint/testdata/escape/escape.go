// Package escapefix seeds the escapecheck driver test: the compiler's
// escape analysis must flag Boxed (its local moves to the heap inside a
// //ldlint:noalloc body), stay silent for Clean, and honor the
// suppression in Exempt.
package escapefix

// Boxed violates its annotation: returning &v forces v off the stack.
//
//ldlint:noalloc
func Boxed(n int) *int {
	v := n + 1
	return &v
}

// Clean keeps everything on the stack.
//
//ldlint:noalloc
func Clean(n int) int {
	v := n + 1
	return v
}

// Exempt has the same heap move as Boxed behind a reasoned suppression.
//
//ldlint:noalloc
func Exempt(n int) *int {
	v := n + 1 //ldlint:ignore escapecheck fixture demonstrates suppressing a compiler escape verdict
	return &v
}
