// Package determreach is the golden fixture for the interprocedural
// determinism-reachability analyzer: wall-clock reads, global math/rand
// and map iteration in functions reachable from a
// //ldlint:deterministic root are reported with the call path,
// goroutine-spawn edges are followed (spawned work runs inside the same
// simulation), annotated functions are checked by the intra analyzer
// instead, and a call-site ignore cuts the edge for sanctioned bridges
// out of the simulated world.
package determreach

import "time"

var (
	now   int64
	epoch time.Time
	index map[string]int
)

//ldlint:deterministic
func eventLoop() {
	step()
	//ldlint:ignore determreach fixture demonstrates a sanctioned bridge out of the simulated world
	bridge()
}

func step() {
	now = time.Now().UnixNano() // want determreach reached from deterministic scope via determreach.eventLoop -> determreach.step
}

// bridge is reached only through the suppressed call site: the edge cut
// exempts its subtree.
func bridge() {
	now = time.Now().UnixNano()
}

//ldlint:deterministic
func spawner() {
	go worker()
}

// worker runs on a goroutine spawned from deterministic scope, which is
// still inside the simulation: the go edge is followed.
func worker() {
	for k := range index { // want determreach map iteration order is nondeterministic
		_ = k
	}
}

// annotatedCallee carries its own function-level directive: the intra
// determinism analyzer checks its body directly, and the reachability
// pass treats it as a root rather than re-reporting through callers.
//
//ldlint:deterministic
func annotatedCallee() {
	_ = time.Since(epoch) // want determinism time.Since reads the wall clock
}
