// Package atomiccopy is the golden fixture for the atomiccopy analyzer.
package atomiccopy

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	hits atomic.Int64
}

type guarded struct {
	mu sync.Mutex
	n  int
}

func byValueParam(c counter) int64 { // want atomiccopy parameter passes
	return c.hits.Load()
}

func (c counter) valueReceiver() int64 { // want atomiccopy receiver passes
	return c.hits.Load()
}

func valueResult() counter { // want atomiccopy result passes
	return counter{} // ok: fresh construction is not a copy
}

func rangeCopy(list []counter) int64 {
	var total int64
	for _, c := range list { // want atomiccopy range copies
		total += c.hits.Load()
	}
	return total
}

func assignCopy(g *guarded) {
	snapshot := *g // want atomiccopy assignment copies
	_ = snapshot.n
}

func boxCopy(g *guarded, sink func(any)) {
	sink(*g) // want atomiccopy argument boxes
}

func pointerParam(g *guarded) int { // ok: pointer passing shares the lock
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

func indexCopy(list []counter) {
	byIndex := &list[0] // ok: indexing through a pointer is not a copy
	byIndex.hits.Add(1)
}

func suppressed(g *guarded) {
	//ldlint:ignore atomiccopy fixture demonstrates a reasoned suppression
	snap := *g
	_ = snap.n
}
