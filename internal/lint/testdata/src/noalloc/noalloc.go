// Package noalloc is the golden fixture for the noalloc analyzer: each
// line with a trailing "want" marker must produce exactly the named
// diagnostic, and every unmarked shape must stay silent.
package noalloc

import (
	"errors"
	"fmt"
)

var (
	sink    []byte
	errSink error
	anySink func(any)
)

//ldlint:noalloc
func calls(n int) {
	_ = fmt.Sprintf("%d", n)     // want noalloc fmt.Sprintf allocates
	errSink = errors.New("boom") // want noalloc errors.New allocates
}

//ldlint:noalloc
func concat(s string) string {
	s += "suffix"     // want noalloc string concatenation allocates
	t := s + s        // want noalloc string concatenation allocates
	const u = "a" + "b" // ok: constant concatenation folds at compile time
	_ = u
	return t
}

//ldlint:noalloc
func literals(n int) {
	_ = map[string]int{"a": 1} // want noalloc map literal allocates
	sink = []byte{1, 2}        // want noalloc slice literal allocates
	sink = make([]byte, n)     // want noalloc make allocates
	_ = new(int)               // want noalloc new allocates
	var quad [4]byte
	quad = [4]byte{1, 2, 3, 4} // ok: array literals live on the stack
	_ = quad
}

//ldlint:noalloc
func appends(buf, extra []byte) []byte {
	buf = append(buf, extra...)   // ok: amortized growth writes back to buf
	misTarget := append(extra, 0) // want noalloc append result is not assigned back
	_ = misTarget
	return append(buf, 0) // ok: append-style encoder returns the grown slice
}

//ldlint:noalloc
func convert(b []byte, m map[string]int) int {
	_ = string(b)       // want noalloc conversion allocates outside the optimized map-index form
	return m[string(b)] // ok: the compiler keeps the map-index form allocation-free
}

//ldlint:noalloc
func boxes(v [2]int64, p *int) any {
	anySink(v) // want noalloc argument boxes
	anySink(p) // ok: pointer-shaped values box without a heap copy
	_ = any(v) // want noalloc conversion boxes
	return v   // want noalloc return value boxes
}

//ldlint:noalloc
func closure() int {
	total := 0
	add := func(n int) { total += n } // want noalloc closure captures mutated variable
	add(3)
	return total
}

//ldlint:noalloc
func suppressed(n int) {
	sink = make([]byte, n) //ldlint:ignore noalloc fixture demonstrates a reasoned suppression
}

// unannotated functions may allocate freely.
func unannotated() []byte {
	return append(make([]byte, 0, 8), 'x')
}
