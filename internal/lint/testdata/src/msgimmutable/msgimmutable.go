// Package msgimmutable is the golden fixture for the msgimmutable
// analyzer.
package msgimmutable

import "ldplayer/internal/trace"

func writes(e *trace.Entry, b []byte) {
	e.Message[0] = 0xFF // want msgimmutable write into a trace.Entry.Message buffer
	alias := e.Message
	alias[1] = 0            // want msgimmutable write into a trace.Entry.Message buffer
	re := alias[2:]
	re[0]++                 // want msgimmutable write into a trace.Entry.Message buffer
	copy(alias, b)          // want msgimmutable copy into a trace.Entry.Message buffer
	_ = append(alias, b...) // want msgimmutable append to a trace.Entry.Message buffer
	e.Message = b           // ok: whole-field replacement publishes a fresh buffer
	//ldlint:ignore msgimmutable fixture demonstrates a reasoned suppression
	alias[3] = 0
}

func reads(e *trace.Entry, dst []byte) int {
	n := copy(dst, e.Message) // ok: copying out of the buffer is a read
	return n + int(e.Message[0])
}
