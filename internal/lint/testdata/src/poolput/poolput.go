// Package poolput is the golden fixture for the poolput analyzer.
package poolput

import "sync"

type big struct{ a, b, c int64 }

var pool sync.Pool

func puts(buf []byte, v big, p *big, val any) {
	pool.Put(buf) // want poolput sync.Pool.Put of slice
	pool.Put(v)   // want poolput sync.Pool.Put of non-pointer
	pool.Put(p)   // ok: pointers are the intended pooled shape
	pool.Put(val) // ok: already an interface, no further boxing here
	//ldlint:ignore poolput fixture demonstrates a reasoned suppression
	pool.Put(buf)
}

func ptrReceiver(pp *sync.Pool, buf []byte) {
	pp.Put(buf) // want poolput sync.Pool.Put of slice
}
