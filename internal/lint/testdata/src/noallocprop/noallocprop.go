// Package noallocprop is the golden fixture for the interprocedural
// noalloc propagation analyzer: allocations in unannotated functions
// reachable from a //ldlint:noalloc root are reported with the call
// path, goroutine-spawn edges are not followed, annotated callees are
// their own roots, and both suppression forms round-trip — a call-site
// ignore cuts the edge, a construct-level ignore silences one finding.
package noallocprop

var sink []byte

//ldlint:noalloc
func root(n int) {
	level1(n)
	go spawned(n)
	//ldlint:ignore noallocprop fixture demonstrates a call-site edge cut at a deliberate cold-path boundary
	coldPath(n)
	annotatedCallee(n)
}

// rootA also reaches level2; the construct there is reported once, on
// the path from the first root in declaration order.
//
//ldlint:noalloc
func rootA(n int) {
	level1(n)
}

func level1(n int) {
	level2(n)
}

func level2(n int) {
	sink = make([]byte, n) // want noallocprop on //ldlint:noalloc path noallocprop.root -> noallocprop.level1 -> noallocprop.level2
}

// spawned is reached only over a go edge: its allocation runs on the
// new goroutine, not on the root's allocation count.
func spawned(n int) {
	sink = make([]byte, n)
}

// coldPath is reached only through the suppressed call site above: the
// edge cut exempts its whole subtree.
func coldPath(n int) {
	sink = make([]byte, n)
	deeper(n)
}

func deeper(n int) {
	sink = make([]byte, n)
}

// annotatedCallee carries its own annotation: propagation stops here
// and the intra-function analyzer owns its body.
//
//ldlint:noalloc
func annotatedCallee(n int) {
	_ = n
}

type codec struct{ buf []byte }

//ldlint:noalloc
func (c *codec) encode(n int) {
	c.grow(n)
}

func (c *codec) grow(n int) {
	c.buf = make([]byte, n) // want noallocprop on //ldlint:noalloc path noallocprop.codec.encode -> noallocprop.codec.grow
}

// refRoot passes a function value to a call site: the callee may invoke
// it, so the reference edge is followed.
//
//ldlint:noalloc
func refRoot() {
	apply(refCallee)
}

func apply(f func()) { f() }

func refCallee() {
	sink = []byte{1} // want noallocprop on //ldlint:noalloc path noallocprop.refRoot -> noallocprop.refCallee
}

//ldlint:noalloc
func rootB(n int) {
	coldAlloc(n)
}

func coldAlloc(n int) {
	sink = make([]byte, n) //ldlint:ignore noallocprop fixture demonstrates a construct-level exemption surviving propagation
}
