// Package shardconfine is the golden fixture for the
// goroutine-confinement analyzer: values of a //ldlint:confined type
// must not escape their owning goroutine via channel sends, go-closure
// captures, spawn arguments or receivers, package-level stores, or
// cross-shard stores — while ownership transfer at birth (a freshly
// constructed value handed straight to the new goroutine) stays legal.
package shardconfine

// Shard stands in for the real confined types (the engine shard, the
// qlog SPSC producer).
//
//ldlint:confined
type Shard struct {
	buf   []byte
	cache map[string]int
}

var global *Shard

func NewShard() *Shard { return &Shard{} }

func use(s *Shard) { _ = s }

func (s *Shard) run() {}

func leakSend(ch chan *Shard, s *Shard) {
	ch <- s // want shardconfine send of confined shardconfine.Shard value s on a channel
}

func leakFieldSend(ch chan []byte, s *Shard) {
	ch <- s.buf // want shardconfine send of confined shardconfine.Shard value s on a channel
}

func leakCapture(s *Shard) {
	go func() {
		s.buf = nil // want shardconfine goroutine closure captures confined shardconfine.Shard value s
	}()
}

func leakArg(s *Shard) {
	go use(s) // want shardconfine existing confined shardconfine.Shard value s handed to a new goroutine
}

func leakReceiver(s *Shard) {
	go s.run() // want shardconfine used as a goroutine's method receiver
}

// birthTransfer is the sanctioned shape: the shard is constructed in
// the spawn's argument list, so the new goroutine holds its only
// reference and becomes the owner.
func birthTransfer() {
	go use(NewShard())
}

func leakGlobal(s *Shard) {
	global = s // want shardconfine stored in package-level global
}

func (s *Shard) crossStore(other *Shard) {
	other.buf = s.buf // want shardconfine cross-shard store
}

// selfStore is the owner touching its own state: silent.
func (s *Shard) selfStore() {
	s.buf = s.buf[:0]
}

func suppressedSend(ch chan *Shard, s *Shard) {
	ch <- s //ldlint:ignore shardconfine fixture demonstrates a reasoned handoff: the receiver joins the owner before any further use
}
