// Package determinism is the golden fixture for the determinism
// analyzer. The package lives outside internal/netsim, so the directive
// below opts it into the deterministic-scope contract — which is itself
// part of what this fixture tests.
//
//ldlint:deterministic
package determinism

import (
	"math/rand"
	"time"
)

func clocks() time.Duration {
	start := time.Now()      // want determinism time.Now reads the wall clock
	return time.Since(start) // want determinism time.Since reads the wall clock
}

func timers(f func()) *time.Timer {
	return time.AfterFunc(time.Millisecond, f) // want determinism time.AfterFunc schedules on the wall clock
}

func sleeps() {
	time.Sleep(time.Millisecond) // want determinism time.Sleep schedules on the wall clock
}

func channelTimers() <-chan time.Time {
	t := time.NewTimer(time.Second) // want determinism time.NewTimer schedules on the wall clock
	return t.C
}

func tickers() <-chan time.Time {
	return time.Tick(time.Second) // want determinism time.Tick schedules on the wall clock
}

// clock mirrors vclock.Clock: interface method calls are the sanctioned
// way to schedule, because an injected SimClock can satisfy them.
type clock interface {
	AfterFunc(d time.Duration, f func()) *time.Timer
	Sleep(d time.Duration)
}

func injectedClock(c clock, f func()) {
	c.AfterFunc(time.Millisecond, f) // ok: interface method, not the wall clock
	c.Sleep(time.Millisecond)        // ok: interface method, not the wall clock
}

func globalRand() int {
	return rand.Intn(6) // want determinism rand.Intn uses the global math/rand PRNG
}

func seededRand(seed int64) float64 {
	r := rand.New(rand.NewSource(seed)) // ok: seeded per-instance constructors
	return r.Float64()                  // ok: method on a seeded *rand.Rand
}

func mapOrder(m map[string]int) int {
	total := 0
	for _, v := range m { // want determinism map iteration order is nondeterministic
		total += v
	}
	//ldlint:ignore determinism fixture demonstrates an order-independent aggregation
	for _, v := range m {
		total += v
	}
	return total
}

func sliceOrder(s []int) int {
	total := 0
	for _, v := range s { // ok: slice iteration order is fixed
		total += v
	}
	return total
}
