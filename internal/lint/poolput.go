package lint

import (
	"go/ast"
	"go/types"
)

// PoolPut flags sync.Pool.Put calls whose argument is a slice or other
// non-pointer-shaped value. Put takes `any`, so a non-pointer argument
// is boxed into the interface — one heap allocation on *every* Put,
// which silently turns a recycling fast path into an allocating one
// (the failure mode the replay batch freelist works around with a
// typed channel). Pool a pointer (*[]byte, *bytes.Buffer, *T) instead.
var PoolPut = &Analyzer{
	Name: "poolput",
	Doc:  "flag sync.Pool.Put of slice or non-pointer values (boxing allocates on every Put)",
	Run:  runPoolPut,
}

func runPoolPut(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Put" {
				return true
			}
			selection, ok := pass.Info.Selections[sel]
			if !ok || !isSyncPool(selection.Recv()) {
				return true
			}
			argType := pass.Info.Types[call.Args[0]].Type
			if argType == nil {
				return true
			}
			switch argType.Underlying().(type) {
			case *types.Interface:
				// Already an interface: no further boxing at this call.
			case *types.Pointer:
				// The intended shape.
			case *types.Slice:
				pass.Reportf(call.Pos(), "sync.Pool.Put of slice %s boxes it, allocating on every Put; pool a *%s instead", argType, argType)
			default:
				if !isPointerShaped(argType) && !isZeroSized(argType) {
					pass.Reportf(call.Pos(), "sync.Pool.Put of non-pointer %s boxes it, allocating on every Put; pool a pointer instead", argType)
				}
			}
			return true
		})
	}
}

// isSyncPool reports whether t is sync.Pool or *sync.Pool.
func isSyncPool(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}
