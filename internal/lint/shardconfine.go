package lint

import (
	"go/ast"
	"go/types"
)

// ShardConfine verifies goroutine confinement of //ldlint:confined
// types: values of a confined type (EngineShard, the qlog SPSC
// Producer) — and anything selected out of one — belong to exactly one
// goroutine, and the analyzer flags every construct that would hand a
// reference to another one:
//
//   - sends of a confined value (or a field of one) on a channel:
//     whatever receives is by definition another goroutine;
//   - confined values captured by a go-statement closure (or a closure
//     handed to vclock's Clock.Go), and existing confined variables
//     passed as go-call arguments or used as a go-call's method
//     receiver. Ownership transfer at birth stays legal: a value
//     freshly constructed *inside the go statement's argument list*
//     (go s.serve(e.NewShard())) has no other reference, so handing it
//     to the new goroutine is how a shard acquires its owner in the
//     first place;
//   - stores of confined-derived values into package-level variables
//     (visible to every goroutine);
//   - cross-shard stores: inside a method on a confined receiver,
//     stores into a *different* confined value's state — the receiver
//     leaking its buffers into a sibling shard.
//
// This is the static side of a two-sided gate: the race detector job
// (`make race`) exercises the same surfaces dynamically, and the
// generation-counter/atomic-field patterns that make a *deliberate*
// cross-goroutine read safe (CacheStats scraping a shard's atomic
// counters) carry reasoned //ldlint:ignore suppressions naming why.
var ShardConfine = &ModuleAnalyzer{
	Name: "shardconfine",
	Doc:  "keep //ldlint:confined values (engine shards, SPSC producers) from escaping their owning goroutine",
	Run:  runShardConfine,
}

func runShardConfine(p *ModulePass) {
	m := p.Module
	if len(m.ConfinedTy) == 0 {
		return
	}
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
					checkConfinedFunc(p, pkg, fn)
				}
			}
		}
	}
}

func checkConfinedFunc(p *ModulePass, pkg *Package, fn *ast.FuncDecl) {
	m := p.Module
	info := pkg.Info

	// recvObj is the receiver variable when fn is a method on a
	// confined type — the one confined value this function legitimately
	// owns state of.
	var recvObj *types.Var
	if fn.Recv != nil && len(fn.Recv.List) == 1 {
		field := fn.Recv.List[0]
		if len(field.Names) == 1 {
			if obj, ok := info.Defs[field.Names[0]].(*types.Var); ok && m.confinedTypeName(obj.Type()) != nil {
				recvObj = obj
			}
		}
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if tn, base := m.confinedBase(info, n.Value); tn != nil {
				p.Reportf(n.Value.Pos(), "send of confined %s.%s value %s on a channel leaks it to the receiving goroutine",
					tn.Pkg().Name(), tn.Name(), types.ExprString(base))
			}
		case *ast.GoStmt:
			checkConfinedSpawn(p, pkg, n.Call, fn)
		case *ast.CallExpr:
			if isGoroutineSpawner(info, n) {
				checkConfinedSpawn(p, pkg, n, fn)
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				tn, base := m.confinedBase(info, rhs)
				if tn == nil {
					continue
				}
				lhs := n.Lhs[i]
				if obj := packageLevelTarget(info, lhs); obj != nil {
					p.Reportf(rhs.Pos(), "confined %s.%s value %s stored in package-level %s is visible to every goroutine",
						tn.Pkg().Name(), tn.Name(), types.ExprString(base), obj.Name())
					continue
				}
				if recvObj != nil {
					if other := confinedLHSBase(m, info, lhs); other != nil && other != recvObj {
						p.Reportf(rhs.Pos(), "cross-shard store: %s's state %s written into sibling confined value %s",
							recvObj.Name(), types.ExprString(base), other.Name())
					}
				}
			}
		}
		return true
	})
}

// checkConfinedSpawn applies the goroutine-handoff rules to one spawn
// call (a go statement's call or a vclock Clock.Go call).
func checkConfinedSpawn(p *ModulePass, pkg *Package, call *ast.CallExpr, fn *ast.FuncDecl) {
	m := p.Module
	info := pkg.Info

	// go x.method(...): the receiver x escapes onto the new goroutine.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if tn, base := m.confinedBase(info, sel.X); tn != nil && !freshlyConstructed(sel.X) {
			p.Reportf(sel.X.Pos(), "confined %s.%s value %s used as a goroutine's method receiver escapes its owning goroutine",
				tn.Pkg().Name(), tn.Name(), types.ExprString(base))
		}
	}
	for _, arg := range call.Args {
		// A closure argument: anything confined it captures from the
		// enclosing scope moves to the new goroutine.
		if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
			checkConfinedCaptures(p, pkg, lit)
			continue
		}
		if tn, base := m.confinedBase(info, arg); tn != nil && !freshlyConstructed(arg) {
			p.Reportf(arg.Pos(), "existing confined %s.%s value %s handed to a new goroutine; ownership transfer requires a freshly constructed value",
				tn.Pkg().Name(), tn.Name(), types.ExprString(base))
		}
	}
	// go func(){...}(): the called literal itself.
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		checkConfinedCaptures(p, pkg, lit)
	}
}

// checkConfinedCaptures flags identifiers inside a spawned closure that
// resolve to confined-typed variables declared outside the literal.
func checkConfinedCaptures(p *ModulePass, pkg *Package, lit *ast.FuncLit) {
	m := p.Module
	info := pkg.Info
	reported := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || reported[obj] {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return true // declared inside the literal: not a capture
		}
		tn := m.confinedTypeName(obj.Type())
		if tn == nil {
			return true
		}
		reported[obj] = true
		p.Reportf(id.Pos(), "goroutine closure captures confined %s.%s value %s from its owning goroutine",
			tn.Pkg().Name(), tn.Name(), obj.Name())
		return true
	})
}

// confinedBase reports whether expr is a confined value or derived from
// one: it unwraps parens, &, *, field selections, and index
// expressions, and returns the confined type plus the base expression
// the diagnostic should name. Method calls and other call results
// break the chain (a method choosing to return internal state is its
// own design decision, not an implicit escape this analyzer polices).
func (m *Module) confinedBase(info *types.Info, expr ast.Expr) (*types.TypeName, ast.Expr) {
	e := ast.Unparen(expr)
	for {
		if tv, ok := info.Types[e]; ok && tv.Type != nil {
			if tn := m.confinedTypeName(tv.Type); tn != nil {
				return tn, e
			}
		}
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = ast.Unparen(x.X)
		case *ast.IndexExpr:
			e = ast.Unparen(x.X)
		case *ast.UnaryExpr:
			e = ast.Unparen(x.X)
		case *ast.StarExpr:
			e = ast.Unparen(x.X)
		default:
			return nil, nil
		}
	}
}

// freshlyConstructed reports whether expr denotes a value with no prior
// reference: a direct call result (e.NewShard()), a composite literal,
// or the address of one. Handing such a value to a spawned goroutine is
// the ownership-establishing transfer, not an escape.
func freshlyConstructed(expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.CallExpr:
		return true
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
		return ok
	}
	return false
}

// packageLevelTarget resolves an assignment destination to a
// package-level variable when the store lands in one (directly, or
// through a field/element of one).
func packageLevelTarget(info *types.Info, lhs ast.Expr) *types.Var {
	obj := rootIdentObj(info, lhs)
	if obj == nil || obj.Pkg() == nil {
		return nil
	}
	if v, ok := obj.(*types.Var); ok && obj.Parent() == obj.Pkg().Scope() {
		return v
	}
	return nil
}

// confinedLHSBase resolves an assignment destination to the confined
// variable whose state it writes, or nil.
func confinedLHSBase(m *Module, info *types.Info, lhs ast.Expr) types.Object {
	obj := rootIdentObj(info, lhs)
	if obj == nil {
		return nil
	}
	if m.confinedTypeName(obj.Type()) == nil {
		return nil
	}
	return obj
}

// rootIdentObj walks a selector/index/star chain to its base identifier
// and resolves it.
func rootIdentObj(info *types.Info, expr ast.Expr) types.Object {
	e := ast.Unparen(expr)
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return info.Uses[x]
		case *ast.SelectorExpr:
			e = ast.Unparen(x.X)
		case *ast.IndexExpr:
			e = ast.Unparen(x.X)
		case *ast.StarExpr:
			e = ast.Unparen(x.X)
		default:
			return nil
		}
	}
}
