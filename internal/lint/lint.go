// Package lint is ldlint's analyzer framework: a multi-pass static
// analyzer built entirely on the stdlib toolchain (go/parser, go/ast,
// go/types with the source importer — no x/tools dependency), encoding
// the performance and determinism contracts the rest of this repository
// states in prose.
//
// Dynamic guards (AllocsPerRun regression tests, seeded chaos
// scenarios) only catch a contract violation on the exact path a test
// exercises; the analyzers here check every function on every build.
// The contracts enforced:
//
//   - noalloc: functions annotated //ldlint:noalloc must not contain
//     allocation-prone constructs (fmt/errors.New calls, string
//     concatenation, map/slice literals, make/new, mismatched append,
//     interface-boxing conversions, closures capturing mutated
//     variables).
//   - determinism: seeded-impairment code (internal/netsim and
//     packages carrying a //ldlint:deterministic directive) must not
//     read the wall clock, use the global math/rand PRNG, or iterate
//     maps (nondeterministic order).
//   - poolput: sync.Pool.Put of a slice or other non-pointer value
//     boxes it into an interface, allocating on every Put.
//   - msgimmutable: trace.Entry.Message buffers are immutable once an
//     entry is produced; no element writes, copy-overs, or appends
//     through the field or an alias of it.
//   - atomiccopy: by-value copies of structs containing sync or
//     sync/atomic fields (params, range copies, assignments, interface
//     boxing) beyond what go vet's copylocks reports.
//
// A diagnostic may be silenced with an explicit, reasoned suppression
// on the same line or the line above:
//
//	//ldlint:ignore <analyzer> <reason>
//
// A suppression without a reason is itself a diagnostic: every
// exemption from a contract must say why it is safe.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check over a typechecked package.
type Analyzer struct {
	// Name is the identifier used by -only/-disable flags and in
	// //ldlint:ignore suppressions.
	Name string
	// Doc is a one-line description shown by ldlint -list.
	Doc string
	// Run inspects the package and reports diagnostics via pass.Reportf.
	Run func(*Pass)
}

// All lists every analyzer in the suite, in the order they run.
var All = []*Analyzer{NoAlloc, Determinism, PoolPut, MsgImmutable, AtomicCopy}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Diagnostic is one finding, anchored to a file:line:col position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one typechecked package through one analyzer.
type Pass struct {
	Fset  *token.FileSet
	Path  string // import path
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	analyzer string
	out      *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.out = append(*p.out, Diagnostic{
		Analyzer: p.analyzer,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Directive prefixes recognized in comments.
const (
	directiveIgnore        = "ldlint:ignore"
	directiveNoAlloc       = "ldlint:noalloc"
	directiveDeterministic = "ldlint:deterministic"
)

// directiveText extracts the directive body from a comment line: for
// "//ldlint:ignore noalloc reason" it returns "ignore noalloc reason",
// true. Directives must start immediately after "//" (no space), the
// convention Go tooling uses to distinguish directives from prose.
func directiveText(c *ast.Comment) (string, bool) {
	text := c.Text
	if !strings.HasPrefix(text, "//ldlint:") {
		return "", false
	}
	return strings.TrimPrefix(text, "//ldlint:"), true
}

// hasDirective reports whether the comment group contains the given
// directive (e.g. "ldlint:noalloc"), matching the full word.
func hasDirective(g *ast.CommentGroup, directive string) bool {
	if g == nil {
		return false
	}
	want := strings.TrimPrefix(directive, "ldlint:")
	for _, c := range g.List {
		body, ok := directiveText(c)
		if !ok {
			continue
		}
		word, _, _ := strings.Cut(body, " ")
		if word == want {
			return true
		}
	}
	return false
}

// fileHasDirective reports whether any comment in the file carries the
// directive. Used for package-scope opt-ins like //ldlint:deterministic.
func fileHasDirective(f *ast.File, directive string) bool {
	for _, g := range f.Comments {
		if hasDirective(g, directive) {
			return true
		}
	}
	return false
}

// suppression is one parsed //ldlint:ignore comment.
type suppression struct {
	analyzer string
	reason   string
	pos      token.Position
	used     bool
}

// collectSuppressions parses every //ldlint:ignore comment in the
// package. Malformed suppressions (no analyzer, unknown analyzer, or a
// missing reason) are reported as diagnostics under the "ldlint" name:
// an exemption that does not say why it is safe is not an exemption.
func collectSuppressions(fset *token.FileSet, files []*ast.File, analyzers []*Analyzer, out *[]Diagnostic) []*suppression {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var sups []*suppression
	for _, f := range files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				body, ok := directiveText(c)
				if !ok || !strings.HasPrefix(body, "ignore") {
					continue
				}
				rest := strings.TrimPrefix(body, "ignore")
				if rest != "" && !strings.HasPrefix(rest, " ") {
					continue // e.g. a hypothetical ldlint:ignorefoo
				}
				pos := fset.Position(c.Pos())
				name, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
				if name == "" {
					*out = append(*out, Diagnostic{Analyzer: "ldlint", Pos: pos,
						Message: "ldlint:ignore needs an analyzer name and a reason"})
					continue
				}
				if !known[name] && ByName(name) == nil {
					*out = append(*out, Diagnostic{Analyzer: "ldlint", Pos: pos,
						Message: fmt.Sprintf("ldlint:ignore of unknown analyzer %q", name)})
					continue
				}
				if strings.TrimSpace(reason) == "" {
					*out = append(*out, Diagnostic{Analyzer: "ldlint", Pos: pos,
						Message: fmt.Sprintf("ldlint:ignore %s needs a reason", name)})
					continue
				}
				sups = append(sups, &suppression{analyzer: name, reason: reason, pos: pos})
			}
		}
	}
	return sups
}

// applySuppressions filters diags: a suppression on line L of a file
// silences that analyzer's diagnostics on line L (trailing comment) and
// line L+1 (comment above the flagged statement).
func applySuppressions(diags []Diagnostic, sups []*suppression) []Diagnostic {
	if len(sups) == 0 {
		return diags
	}
	type key struct {
		file     string
		line     int
		analyzer string
	}
	byKey := make(map[key]*suppression, 2*len(sups))
	for _, s := range sups {
		byKey[key{s.pos.Filename, s.pos.Line, s.analyzer}] = s
		byKey[key{s.pos.Filename, s.pos.Line + 1, s.analyzer}] = s
	}
	kept := diags[:0]
	for _, d := range diags {
		if s, ok := byKey[key{d.Pos.Filename, d.Pos.Line, d.Analyzer}]; ok {
			s.used = true
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

// RunPackage runs the given analyzers over one loaded package and
// returns its surviving diagnostics sorted by position.
func RunPackage(p *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	pass := &Pass{
		Fset:  p.Fset,
		Path:  p.Path,
		Files: p.Files,
		Pkg:   p.Types,
		Info:  p.Info,
		out:   &diags,
	}
	for _, a := range analyzers {
		pass.analyzer = a.Name
		a.Run(pass)
	}
	sups := collectSuppressions(p.Fset, p.Files, analyzers, &diags)
	diags = applySuppressions(diags, sups)
	sortDiagnostics(diags)
	return diags
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
