// Package lint is ldlint's analyzer framework: a multi-pass static
// analyzer built entirely on the stdlib toolchain (go/parser, go/ast,
// go/types with the source importer — no x/tools dependency), encoding
// the performance and determinism contracts the rest of this repository
// states in prose.
//
// Dynamic guards (AllocsPerRun regression tests, seeded chaos
// scenarios) only catch a contract violation on the exact path a test
// exercises; the analyzers here check every function on every build.
// The contracts enforced:
//
//   - noalloc: functions annotated //ldlint:noalloc must not contain
//     allocation-prone constructs (fmt/errors.New calls, string
//     concatenation, map/slice literals, make/new, mismatched append,
//     interface-boxing conversions, closures capturing mutated
//     variables).
//   - determinism: seeded-impairment code (internal/netsim and
//     packages carrying a //ldlint:deterministic directive) must not
//     read the wall clock, use the global math/rand PRNG, or iterate
//     maps (nondeterministic order).
//   - poolput: sync.Pool.Put of a slice or other non-pointer value
//     boxes it into an interface, allocating on every Put.
//   - msgimmutable: trace.Entry.Message buffers are immutable once an
//     entry is produced; no element writes, copy-overs, or appends
//     through the field or an alias of it.
//   - atomiccopy: by-value copies of structs containing sync or
//     sync/atomic fields (params, range copies, assignments, interface
//     boxing) beyond what go vet's copylocks reports.
//
// A diagnostic may be silenced with an explicit, reasoned suppression
// on the same line or the line above:
//
//	//ldlint:ignore <analyzer> <reason>
//
// A suppression without a reason is itself a diagnostic: every
// exemption from a contract must say why it is safe.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check over a typechecked package.
type Analyzer struct {
	// Name is the identifier used by -only/-disable flags and in
	// //ldlint:ignore suppressions.
	Name string
	// Doc is a one-line description shown by ldlint -list.
	Doc string
	// Run inspects the package and reports diagnostics via pass.Reportf.
	Run func(*Pass)
}

// All lists every analyzer in the suite, in the order they run.
var All = []*Analyzer{NoAlloc, Determinism, PoolPut, MsgImmutable, AtomicCopy}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Diagnostic is one finding, anchored to a file:line:col position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one typechecked package through one analyzer.
type Pass struct {
	Fset  *token.FileSet
	Path  string // import path
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	analyzer string
	out      *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.out = append(*p.out, Diagnostic{
		Analyzer: p.analyzer,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Directive prefixes recognized in comments.
const (
	directiveIgnore        = "ldlint:ignore"
	directiveNoAlloc       = "ldlint:noalloc"
	directiveDeterministic = "ldlint:deterministic"
	directiveConfined      = "ldlint:confined"
)

// directiveText extracts the directive body from a comment line: for
// "//ldlint:ignore noalloc reason" it returns "ignore noalloc reason",
// true. Directives must start immediately after "//" (no space), the
// convention Go tooling uses to distinguish directives from prose.
func directiveText(c *ast.Comment) (string, bool) {
	text := c.Text
	if !strings.HasPrefix(text, "//ldlint:") {
		return "", false
	}
	return strings.TrimPrefix(text, "//ldlint:"), true
}

// hasDirective reports whether the comment group contains the given
// directive (e.g. "ldlint:noalloc"), matching the full word.
func hasDirective(g *ast.CommentGroup, directive string) bool {
	if g == nil {
		return false
	}
	want := strings.TrimPrefix(directive, "ldlint:")
	for _, c := range g.List {
		body, ok := directiveText(c)
		if !ok {
			continue
		}
		word, _, _ := strings.Cut(body, " ")
		if word == want {
			return true
		}
	}
	return false
}

// fileHasDirective reports whether the file carries the directive at
// file scope: in any comment group that is not a function's doc
// comment. Used for package-scope opt-ins like //ldlint:deterministic —
// a function-level form of the same directive opts in only that
// function, not the file around it.
func fileHasDirective(f *ast.File, directive string) bool {
	if f == nil {
		return false
	}
	funcDocs := make(map[*ast.CommentGroup]bool)
	for _, d := range f.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok && fn.Doc != nil {
			funcDocs[fn.Doc] = true
		}
	}
	for _, g := range f.Comments {
		if funcDocs[g] {
			continue
		}
		if hasDirective(g, directive) {
			return true
		}
	}
	return false
}

// suppression is one parsed //ldlint:ignore comment.
type suppression struct {
	analyzer string
	reason   string
	pos      token.Position
	used     bool
}

// collectSuppressions parses every //ldlint:ignore comment in the
// package. Malformed suppressions (no analyzer, unknown analyzer, or a
// missing reason) are reported as diagnostics under the "ldlint" name:
// an exemption that does not say why it is safe is not an exemption.
// Names are validated against the full suite — per-package, module,
// and escapecheck — regardless of which subset this run enables, so a
// run under -only never misreports a valid suppression as unknown.
func collectSuppressions(fset *token.FileSet, files []*ast.File, out *[]Diagnostic) []*suppression {
	var sups []*suppression
	for _, f := range files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				body, ok := directiveText(c)
				if !ok || !strings.HasPrefix(body, "ignore") {
					continue
				}
				rest := strings.TrimPrefix(body, "ignore")
				if rest != "" && !strings.HasPrefix(rest, " ") {
					continue // e.g. a hypothetical ldlint:ignorefoo
				}
				pos := fset.Position(c.Pos())
				name, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
				if name == "" {
					*out = append(*out, Diagnostic{Analyzer: "ldlint", Pos: pos,
						Message: "ldlint:ignore needs an analyzer name and a reason"})
					continue
				}
				if !KnownAnalyzerName(name) {
					*out = append(*out, Diagnostic{Analyzer: "ldlint", Pos: pos,
						Message: fmt.Sprintf("ldlint:ignore of unknown analyzer %q", name)})
					continue
				}
				if strings.TrimSpace(reason) == "" {
					*out = append(*out, Diagnostic{Analyzer: "ldlint", Pos: pos,
						Message: fmt.Sprintf("ldlint:ignore %s needs a reason", name)})
					continue
				}
				sups = append(sups, &suppression{analyzer: name, reason: reason, pos: pos})
			}
		}
	}
	return sups
}

// supKey addresses one (file, line, analyzer) suppression slot.
type supKey struct {
	file     string
	line     int
	analyzer string
}

// supIndex maps every line a suppression covers — its own line
// (trailing comment) and the line below (comment above the flagged
// statement) — to the suppression.
type supIndex map[supKey]*suppression

func buildSupIndex(sups []*suppression) supIndex {
	if len(sups) == 0 {
		return nil
	}
	idx := make(supIndex, 2*len(sups))
	for _, s := range sups {
		idx[supKey{s.pos.Filename, s.pos.Line, s.analyzer}] = s
		idx[supKey{s.pos.Filename, s.pos.Line + 1, s.analyzer}] = s
	}
	return idx
}

// applySuppressions filters diags: a suppression on line L of a file
// silences that analyzer's diagnostics on line L (trailing comment) and
// line L+1 (comment above the flagged statement). escapecheck
// diagnostics additionally honor noalloc suppressions on their line —
// the two passes enforce one contract, and a deliberate-allocation site
// should not have to state the same reason twice.
func applySuppressions(diags []Diagnostic, sups []*suppression) []Diagnostic {
	byKey := buildSupIndex(sups)
	if byKey == nil {
		return diags
	}
	lookup := func(d Diagnostic) *suppression {
		if s, ok := byKey[supKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}]; ok {
			return s
		}
		if d.Analyzer == EscapeCheckName {
			if s, ok := byKey[supKey{d.Pos.Filename, d.Pos.Line, NoAlloc.Name}]; ok {
				return s
			}
		}
		return nil
	}
	kept := diags[:0]
	for _, d := range diags {
		if s := lookup(d); s != nil {
			s.used = true
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

// unusedSuppressions reports every well-formed //ldlint:ignore whose
// analyzer ran in this invocation but silenced nothing: a stale
// exemption is a contract hole waiting to reopen, and the inventory of
// ignores only stays honest if rot is a diagnostic too. Suppressions
// for analyzers that did not run (an -only subset, or an interproc
// ignore under a plain per-package run) are left alone.
func unusedSuppressions(sups []*suppression, ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, s := range sups {
		if s.used || !ran[s.analyzer] {
			continue
		}
		out = append(out, Diagnostic{Analyzer: "ldlint", Pos: s.pos,
			Message: fmt.Sprintf("unused ldlint:ignore %s: no %s diagnostic fires here; delete the stale suppression", s.analyzer, s.analyzer)})
	}
	return out
}

// RunPackage runs the given analyzers over one loaded package and
// returns its surviving diagnostics sorted by position, including
// unused-suppression findings for the analyzers that ran. The module
// analyzers can be layered on via RunPackageInterproc, which treats the
// single package as a one-package module.
func RunPackage(p *Package, analyzers []*Analyzer) []Diagnostic {
	return RunPackageInterproc(p, analyzers, nil)
}

// RunPackageInterproc runs per-package and module analyzers over one
// package as a self-contained universe — the shape the golden fixture
// tests use, where each fixture directory exercises one analyzer's
// rules including the interprocedural ones.
func RunPackageInterproc(p *Package, analyzers []*Analyzer, modAnalyzers []*ModuleAnalyzer) []Diagnostic {
	var diags []Diagnostic
	sups := collectSuppressions(p.Fset, p.Files, &diags)
	runIntra(p, analyzers, &diags)
	ran := make(map[string]bool, len(analyzers)+len(modAnalyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	if len(modAnalyzers) > 0 {
		mod := NewModule(p.Fset, p.Path, []*Package{p})
		mod.RunModule(modAnalyzers, sups, &diags)
		for _, a := range modAnalyzers {
			ran[a.Name] = true
		}
	}
	diags = applySuppressions(diags, sups)
	diags = append(diags, unusedSuppressions(sups, ran)...)
	sortDiagnostics(diags)
	return diags
}

// runIntra applies the per-package analyzers to one package.
func runIntra(p *Package, analyzers []*Analyzer, out *[]Diagnostic) {
	pass := &Pass{
		Fset:  p.Fset,
		Path:  p.Path,
		Files: p.Files,
		Pkg:   p.Types,
		Info:  p.Info,
		out:   out,
	}
	for _, a := range analyzers {
		pass.analyzer = a.Name
		a.Run(pass)
	}
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
