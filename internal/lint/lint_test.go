package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// wantMarker is one "// want <analyzer> <substring>" comment in a
// fixture file. A fixture line carrying a marker must produce exactly
// one diagnostic from that analyzer whose message contains the
// substring; a diagnostic with no marker, or a marker with no
// diagnostic, fails the test.
type wantMarker struct {
	file     string // basename
	line     int
	analyzer string
	substr   string
	matched  bool
}

func parseWantMarkers(pkg *Package) []*wantMarker {
	var markers []*wantMarker
	for _, f := range pkg.Files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				name, rest, _ := strings.Cut(strings.TrimSpace(text), " ")
				pos := pkg.Fset.Position(c.Pos())
				markers = append(markers, &wantMarker{
					file:     filepath.Base(pos.Filename),
					line:     pos.Line,
					analyzer: name,
					substr:   strings.TrimSpace(rest),
				})
			}
		}
	}
	return markers
}

// TestGoldenFixtures runs all analyzers — per-package and
// interprocedural — over each fixture package under testdata/src and
// asserts the diagnostics line-by-line against the fixtures' "want"
// markers, in both directions.
func TestGoldenFixtures(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	entries, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(entries) < len(All)+len(ModuleAll) {
		t.Fatalf("found %d fixture packages, want at least %d (one per analyzer)", len(entries), len(All)+len(ModuleAll))
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		t.Run(e.Name(), func(t *testing.T) {
			pkg, err := loader.LoadDir(filepath.Join("testdata", "src", e.Name()))
			if err != nil {
				t.Fatalf("LoadDir: %v", err)
			}
			markers := parseWantMarkers(pkg)
			if len(markers) == 0 {
				t.Fatalf("fixture %s has no want markers", e.Name())
			}
			diags := RunPackageInterproc(pkg, All, ModuleAll)
			for _, d := range diags {
				if !claimMarker(markers, d) {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, m := range markers {
				if !m.matched {
					t.Errorf("%s:%d: missing %s diagnostic containing %q",
						m.file, m.line, m.analyzer, m.substr)
				}
			}
		})
	}
}

func claimMarker(markers []*wantMarker, d Diagnostic) bool {
	for _, m := range markers {
		if m.matched || m.line != d.Pos.Line || m.analyzer != d.Analyzer {
			continue
		}
		if m.file != filepath.Base(d.Pos.Filename) {
			continue
		}
		if !strings.Contains(d.Message, m.substr) {
			continue
		}
		m.matched = true
		return true
	}
	return false
}

// TestFixtureCoverage asserts that every analyzer — per-package and
// interprocedural — has at least one golden fixture exercising it,
// keyed by directory name.
func TestFixtureCoverage(t *testing.T) {
	names := make([]string, 0, len(All)+len(ModuleAll))
	for _, a := range All {
		names = append(names, a.Name)
	}
	for _, a := range ModuleAll {
		names = append(names, a.Name)
	}
	for _, name := range names {
		dir := filepath.Join("testdata", "src", name)
		if _, err := os.Stat(filepath.Join(dir, name+".go")); err != nil {
			t.Errorf("analyzer %s has no fixture package: %v", name, err)
		}
	}
}

// TestRepoLintClean asserts the repository itself is lint-clean with
// the full suite — per-package, interprocedural, and the compiler
// escape cross-check: every surviving construct is either
// contract-conformant or carries a reasoned //ldlint:ignore, and no
// suppression is stale.
func TestRepoLintClean(t *testing.T) {
	if raceEnabled {
		t.Skip("whole-repo typecheck is CPU-heavy under race instrumentation; the non-race `make lint` step of the same gate covers it")
	}
	diags, err := Run(Options{Root: ".", Interproc: true, Escape: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("repo not lint-clean: %s", d)
	}
}

// TestMainSeededViolations runs the CLI entry point over the seeded
// mini-module and asserts the non-zero exit, the grouped output, and
// the malformed-suppression hygiene diagnostics.
func TestMainSeededViolations(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := Main([]string{"-C", filepath.Join("testdata", "seeded"), "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"fmt.Sprint allocates",
		"needs a reason",
		`unknown analyzer "nosuchanalyzer"`,
		"ldlint: 3 issue(s)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q; got:\n%s", want, out)
		}
	}
	// The stale noallocprop suppression in the seeded module must NOT be
	// reported here: unused-suppression findings are gated on the named
	// analyzer actually running, and this run is not interprocedural.
	if strings.Contains(out, "unused ldlint:ignore") {
		t.Errorf("unused-suppression finding leaked into a non-interproc run:\n%s", out)
	}
}

// TestMainInterprocSeeded runs the CLI with -interproc over the seeded
// module and pins the multi-frame call-path message format, the
// unused-suppression finding for the stale interproc ignore, and the
// total count.
func TestMainInterprocSeeded(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := Main([]string{"-interproc", "-C", filepath.Join("testdata", "seeded"), "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"(on //ldlint:noalloc path seeded.entry -> seeded.mid -> seeded.deep)",
		"unused ldlint:ignore noallocprop",
		"ldlint: 5 issue(s)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q; got:\n%s", want, out)
		}
	}
}

// TestEscapeCheck runs the escapecheck pass over its seeded mini-module
// and asserts the compiler's heap-move verdict is reported inside the
// annotated function, stays silent for the clean function, and honors
// the line-level suppression.
func TestEscapeCheck(t *testing.T) {
	diags, err := Run(Options{Root: filepath.Join("testdata", "escape"), Escape: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var boxed bool
	for _, d := range diags {
		switch {
		case d.Analyzer == EscapeCheckName && strings.Contains(d.Message, "in //ldlint:noalloc function Boxed"):
			boxed = true
		default:
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if !boxed {
		t.Errorf("escapecheck missed the heap move in Boxed; got %d diagnostics", len(diags))
	}
}

// TestMainOnlyFilter asserts -only narrows the analyzer set: with only
// poolput enabled the seeded noalloc violation is not reported, but the
// always-on suppression hygiene checks still are.
func TestMainOnlyFilter(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := Main([]string{"-only", "poolput", "-C", filepath.Join("testdata", "seeded"), "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	if strings.Contains(out, "fmt.Sprint") {
		t.Errorf("-only poolput still reported a noalloc diagnostic:\n%s", out)
	}
	if !strings.Contains(out, "needs a reason") {
		t.Errorf("suppression hygiene should stay on under -only; got:\n%s", out)
	}
}

func TestMainList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := Main([]string{"-list"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, stderr.String())
	}
	for _, a := range All {
		if !strings.Contains(stdout.String(), a.Name) {
			t.Errorf("-list output missing analyzer %s", a.Name)
		}
	}
}

func TestMainBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := Main([]string{"-only", "nope", "./..."}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown -only analyzer: exit code = %d, want 2", code)
	}
	stderr.Reset()
	if code := Main([]string{"some/pattern"}, &stdout, &stderr); code != 2 {
		t.Errorf("unsupported pattern: exit code = %d, want 2", code)
	}
}

func TestSelectAnalyzers(t *testing.T) {
	as, err := Options{Only: []string{"noalloc", "poolput"}, Disable: []string{"poolput"}}.SelectAnalyzers()
	if err != nil {
		t.Fatalf("SelectAnalyzers: %v", err)
	}
	if len(as) != 1 || as[0].Name != "noalloc" {
		t.Fatalf("got %d analyzers, want exactly [noalloc]", len(as))
	}
	if _, err := (Options{Disable: []string{"bogus"}}).SelectAnalyzers(); err == nil {
		t.Error("disabling an unknown analyzer should error")
	}
}

// TestSuppressionScope pins the documented suppression grammar: an
// ignore silences its own line and the next line, for the named
// analyzer only.
func TestSuppressionScope(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "noalloc"))
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	// Dropping the suppressions must surface strictly more diagnostics.
	full := RunPackage(pkg, All)
	var fns []*ast.FuncDecl
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Name.Name == "suppressed" {
				fns = append(fns, fn)
			}
		}
	}
	if len(fns) != 1 {
		t.Fatalf("fixture should have exactly one suppressed func, found %d", len(fns))
	}
	for _, d := range full {
		if line := d.Pos.Line; line > pkg.Fset.Position(fns[0].Pos()).Line && line < pkg.Fset.Position(fns[0].End()).Line {
			t.Errorf("diagnostic inside suppressed func body survived: %s", d)
		}
	}
}

// TestDiagnosticString pins the file:line:col rendering the editors and
// the Makefile target depend on.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Analyzer: "noalloc", Message: "boom"}
	d.Pos.Filename = "x.go"
	d.Pos.Line = 3
	d.Pos.Column = 7
	if got, want := d.String(), "x.go:3:7: noalloc: boom"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	if got := fmt.Sprint(d); got != d.String() {
		t.Fatalf("fmt.Sprint(Diagnostic) = %q, want String() form", got)
	}
}
