package lint

import (
	"flag"
	"fmt"
	"go/token"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// Options configures a driver run.
type Options struct {
	// Root is the directory to lint (the module is found from here).
	Root string
	// Only restricts the run to the named analyzers (nil = all). Naming
	// a module analyzer (or escapecheck) enables it even without
	// Interproc/Escape.
	Only []string
	// Disable removes the named analyzers from the run.
	Disable []string
	// Interproc enables the interprocedural module analyzers
	// (noallocprop, determreach, shardconfine) on top of the
	// per-package suite.
	Interproc bool
	// Escape enables the escapecheck build-mode pass: the compiler's
	// escape verdicts diffed against the //ldlint:noalloc set.
	Escape bool
}

// SelectAnalyzers resolves Only/Disable against the per-package suite.
func (o Options) SelectAnalyzers() ([]*Analyzer, error) {
	if err := o.validateNames(); err != nil {
		return nil, err
	}
	selected := All
	if len(o.Only) > 0 {
		selected = nil
		for _, name := range o.Only {
			if a := ByName(name); a != nil {
				selected = append(selected, a)
			}
		}
	}
	return dropDisabled(selected, o.Disable, func(a *Analyzer) string { return a.Name }), nil
}

// SelectModuleAnalyzers resolves Only/Disable/Interproc against the
// module suite: -interproc enables all of it, and naming a module
// analyzer in -only selects it regardless.
func (o Options) SelectModuleAnalyzers() ([]*ModuleAnalyzer, error) {
	if err := o.validateNames(); err != nil {
		return nil, err
	}
	var selected []*ModuleAnalyzer
	switch {
	case len(o.Only) > 0:
		for _, name := range o.Only {
			if a := ModuleByName(name); a != nil {
				selected = append(selected, a)
			}
		}
	case o.Interproc:
		selected = ModuleAll
	}
	return dropDisabled(selected, o.Disable, func(a *ModuleAnalyzer) string { return a.Name }), nil
}

// escapeEnabled resolves whether the escapecheck pass runs: the Escape
// flag or an explicit -only escapecheck, minus -disable.
func (o Options) escapeEnabled() bool {
	for _, name := range o.Disable {
		if name == EscapeCheckName {
			return false
		}
	}
	for _, name := range o.Only {
		if name == EscapeCheckName {
			return true
		}
	}
	return o.Escape && len(o.Only) == 0
}

func (o Options) validateNames() error {
	for _, name := range append(append([]string(nil), o.Only...), o.Disable...) {
		if !KnownAnalyzerName(name) {
			return fmt.Errorf("ldlint: unknown analyzer %q", name)
		}
	}
	return nil
}

func dropDisabled[T any](selected []T, disable []string, name func(T) string) []T {
	if len(disable) == 0 {
		return selected
	}
	drop := make(map[string]bool, len(disable))
	for _, n := range disable {
		drop[n] = true
	}
	kept := make([]T, 0, len(selected))
	for _, a := range selected {
		if !drop[name(a)] {
			kept = append(kept, a)
		}
	}
	return kept
}

// Run lints every package under opts.Root with the selected analyzers
// and returns all surviving diagnostics, grouped by package and sorted
// by position. Packages that fail to load are reported as diagnostics
// under the "ldlint" name rather than aborting the run.
//
// Phases: load everything, run the per-package suite, then (when
// enabled) the interprocedural module analyzers over the loaded
// universe and the escapecheck build pass, and only then apply
// suppressions — module diagnostics honor the same line-level ignores —
// and report the suppressions left unused by the analyzers that ran.
func Run(opts Options) ([]Diagnostic, error) {
	analyzers, err := opts.SelectAnalyzers()
	if err != nil {
		return nil, err
	}
	modAnalyzers, err := opts.SelectModuleAnalyzers()
	if err != nil {
		return nil, err
	}
	loader, err := NewLoader(opts.Root)
	if err != nil {
		return nil, err
	}
	dirs, err := WalkPackages(loader.ModuleDir)
	if err != nil {
		return nil, err
	}
	var (
		diags []Diagnostic
		sups  []*suppression
		pkgs  []*Package
		ran   = make(map[string]bool)
	)
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			diags = append(diags, Diagnostic{Analyzer: "ldlint",
				Pos: position(dir), Message: err.Error()})
			continue
		}
		pkgs = append(pkgs, pkg)
		sups = append(sups, collectSuppressions(pkg.Fset, pkg.Files, &diags)...)
		runIntra(pkg, analyzers, &diags)
	}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	if len(modAnalyzers) > 0 {
		mod := NewModule(loader.Fset, loader.ModulePath, pkgs)
		mod.RunModule(modAnalyzers, sups, &diags)
		for _, a := range modAnalyzers {
			ran[a.Name] = true
		}
	}
	if opts.escapeEnabled() {
		if err := runEscapeCheck(loader.ModuleDir, pkgs, &diags); err != nil {
			return nil, err
		}
		ran[EscapeCheckName] = true
	}
	diags = applySuppressions(diags, sups)
	diags = append(diags, unusedSuppressions(sups, ran)...)
	sortDiagnostics(diags)
	return diags, nil
}

// position fabricates a file position for package-level load errors.
func position(dir string) token.Position {
	return token.Position{Filename: filepath.Join(dir, "(package)")}
}

// Print writes diagnostics grouped by package directory.
func Print(w io.Writer, diags []Diagnostic) {
	lastDir := ""
	for _, d := range diags {
		dir := filepath.Dir(d.Pos.Filename)
		if dir != lastDir {
			fmt.Fprintf(w, "# %s\n", dir)
			lastDir = dir
		}
		fmt.Fprintln(w, d.String())
	}
	if n := len(diags); n > 0 {
		fmt.Fprintf(w, "ldlint: %d issue(s)\n", n)
	}
}

// Main is the ldlint entry point; it returns the process exit code
// (0 clean, 1 diagnostics found, 2 usage or load failure).
func Main(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ldlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list      = fs.Bool("list", false, "list analyzers and exit")
		only      = fs.String("only", "", "comma-separated analyzers to run (default: all)")
		disable   = fs.String("disable", "", "comma-separated analyzers to skip")
		root      = fs.String("C", ".", "directory to lint (module root is located from here)")
		interproc = fs.Bool("interproc", false, "also run the interprocedural call-graph analyzers (noallocprop, determreach, shardconfine)")
		escape    = fs.Bool("escapecheck", false, "also diff the compiler's escape verdicts (go build -gcflags='-m -m') against the //ldlint:noalloc set")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, `usage: ldlint [flags] [./...]

ldlint statically enforces this repository's performance and
determinism contracts over every package in the module. It exits
non-zero when any contract is violated.

Suppress a finding with an explicit reason on the same line or the
line above:

	//ldlint:ignore <analyzer> <reason>

Mark a function as a zero-allocation hot path with //ldlint:noalloc
in its doc comment; opt a package (or a single function) into the
determinism contract with //ldlint:deterministic; mark a
single-goroutine-owned type with //ldlint:confined.

With -interproc the per-package suite is joined by call-graph
analyzers that propagate those contracts across function boundaries
and report violations with the full call path from the contract root.
With -escapecheck the compiler's own escape analysis is diffed
against the //ldlint:noalloc set, catching allocations the AST rules
cannot see (inlining changes, boxing introduced by a toolchain
upgrade).

Flags:
`)
		fs.PrintDefaults()
		fmt.Fprintf(stderr, "\nAnalyzers:\n")
		writeAnalyzerList(stderr)
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		writeAnalyzerList(stdout)
		return 0
	}
	for _, arg := range fs.Args() {
		// Positional patterns exist for go-tool symmetry; the driver
		// always walks the whole module, which is what every pattern in
		// this repo ("./...") means.
		if arg != "./..." && arg != "..." {
			fmt.Fprintf(stderr, "ldlint: unsupported package pattern %q (only ./... )\n", arg)
			return 2
		}
	}
	opts := Options{Root: *root, Interproc: *interproc, Escape: *escape}
	if *only != "" {
		opts.Only = splitList(*only)
	}
	if *disable != "" {
		opts.Disable = splitList(*disable)
	}
	diags, err := Run(opts)
	if err != nil {
		fmt.Fprintf(stderr, "ldlint: %v\n", err)
		return 2
	}
	if len(diags) == 0 {
		return 0
	}
	Print(stdout, diags)
	return 1
}

func writeAnalyzerList(w io.Writer) {
	docs := make(map[string]string, len(All)+len(ModuleAll)+1)
	for _, a := range All {
		docs[a.Name] = a.Doc
	}
	for _, a := range ModuleAll {
		docs[a.Name] = a.Doc + " [-interproc]"
	}
	docs[EscapeCheckName] = EscapeCheckDoc + " [-escapecheck]"
	names := make([]string, 0, len(docs))
	for name := range docs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "  %-13s %s\n", name, docs[name])
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
