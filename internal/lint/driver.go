package lint

import (
	"flag"
	"fmt"
	"go/token"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// Options configures a driver run.
type Options struct {
	// Root is the directory to lint (the module is found from here).
	Root string
	// Only restricts the run to the named analyzers (nil = all).
	Only []string
	// Disable removes the named analyzers from the run.
	Disable []string
}

// SelectAnalyzers resolves Only/Disable against the full suite.
func (o Options) SelectAnalyzers() ([]*Analyzer, error) {
	selected := All
	if len(o.Only) > 0 {
		selected = nil
		for _, name := range o.Only {
			a := ByName(name)
			if a == nil {
				return nil, fmt.Errorf("ldlint: unknown analyzer %q", name)
			}
			selected = append(selected, a)
		}
	}
	if len(o.Disable) > 0 {
		drop := make(map[string]bool)
		for _, name := range o.Disable {
			if ByName(name) == nil {
				return nil, fmt.Errorf("ldlint: unknown analyzer %q", name)
			}
			drop[name] = true
		}
		kept := make([]*Analyzer, 0, len(selected))
		for _, a := range selected {
			if !drop[a.Name] {
				kept = append(kept, a)
			}
		}
		selected = kept
	}
	return selected, nil
}

// Run lints every package under opts.Root with the selected analyzers
// and returns all surviving diagnostics, grouped by package and sorted
// by position. Packages that fail to load are reported as diagnostics
// under the "ldlint" name rather than aborting the run.
func Run(opts Options) ([]Diagnostic, error) {
	analyzers, err := opts.SelectAnalyzers()
	if err != nil {
		return nil, err
	}
	loader, err := NewLoader(opts.Root)
	if err != nil {
		return nil, err
	}
	dirs, err := WalkPackages(loader.ModuleDir)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			diags = append(diags, Diagnostic{Analyzer: "ldlint",
				Pos: position(dir), Message: err.Error()})
			continue
		}
		diags = append(diags, RunPackage(pkg, analyzers)...)
	}
	return diags, nil
}

// position fabricates a file position for package-level load errors.
func position(dir string) token.Position {
	return token.Position{Filename: filepath.Join(dir, "(package)")}
}

// Print writes diagnostics grouped by package directory.
func Print(w io.Writer, diags []Diagnostic) {
	lastDir := ""
	for _, d := range diags {
		dir := filepath.Dir(d.Pos.Filename)
		if dir != lastDir {
			fmt.Fprintf(w, "# %s\n", dir)
			lastDir = dir
		}
		fmt.Fprintln(w, d.String())
	}
	if n := len(diags); n > 0 {
		fmt.Fprintf(w, "ldlint: %d issue(s)\n", n)
	}
}

// Main is the ldlint entry point; it returns the process exit code
// (0 clean, 1 diagnostics found, 2 usage or load failure).
func Main(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ldlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list    = fs.Bool("list", false, "list analyzers and exit")
		only    = fs.String("only", "", "comma-separated analyzers to run (default: all)")
		disable = fs.String("disable", "", "comma-separated analyzers to skip")
		root    = fs.String("C", ".", "directory to lint (module root is located from here)")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, `usage: ldlint [flags] [./...]

ldlint statically enforces this repository's performance and
determinism contracts over every package in the module. It exits
non-zero when any contract is violated.

Suppress a finding with an explicit reason on the same line or the
line above:

	//ldlint:ignore <analyzer> <reason>

Mark a function as a zero-allocation hot path with //ldlint:noalloc
in its doc comment; opt a package into the determinism contract with
//ldlint:deterministic.

Flags:
`)
		fs.PrintDefaults()
		fmt.Fprintf(stderr, "\nAnalyzers:\n")
		writeAnalyzerList(stderr)
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		writeAnalyzerList(stdout)
		return 0
	}
	for _, arg := range fs.Args() {
		// Positional patterns exist for go-tool symmetry; the driver
		// always walks the whole module, which is what every pattern in
		// this repo ("./...") means.
		if arg != "./..." && arg != "..." {
			fmt.Fprintf(stderr, "ldlint: unsupported package pattern %q (only ./... )\n", arg)
			return 2
		}
	}
	opts := Options{Root: *root}
	if *only != "" {
		opts.Only = splitList(*only)
	}
	if *disable != "" {
		opts.Disable = splitList(*disable)
	}
	diags, err := Run(opts)
	if err != nil {
		fmt.Fprintf(stderr, "ldlint: %v\n", err)
		return 2
	}
	if len(diags) == 0 {
		return 0
	}
	Print(stdout, diags)
	return 1
}

func writeAnalyzerList(w io.Writer) {
	names := make([]string, 0, len(All))
	byName := make(map[string]*Analyzer, len(All))
	for _, a := range All {
		names = append(names, a.Name)
		byName[a.Name] = a
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "  %-13s %s\n", name, byName[name].Doc)
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
