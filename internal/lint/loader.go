package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and typechecked package ready for analysis.
type Package struct {
	Path  string // import path within the module
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and typechecks packages of a single module using only
// the stdlib toolchain. Module-local import paths are resolved by
// stripping the module prefix and loading from the corresponding
// directory; everything else (the stdlib) is delegated to the source
// importer, which typechecks GOROOT packages from source. One Loader
// shares a FileSet and package cache across every target, so each
// dependency is typechecked once per run.
type Loader struct {
	Fset       *token.FileSet
	ModuleDir  string
	ModulePath string

	std  types.Importer
	pkgs map[string]*Package // by import path
	busy map[string]bool     // cycle guard
}

// NewLoader builds a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	modDir, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	// The source importer typechecks stdlib dependencies from GOROOT
	// source; with cgo enabled that closure pulls in C "imports" it
	// cannot resolve. Pure-Go variants of net/os exist behind the !cgo
	// build tags and are what this module's analysis needs, so pin the
	// context to cgo-off for this process.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleDir:  modDir,
		ModulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		busy:       make(map[string]bool),
	}, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (string, string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Import implements types.Importer for the typechecker: module-local
// paths load from source through this loader, anything else goes to
// the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		p, err := l.LoadImportPath(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// LoadImportPath loads the module-local package with the given import
// path.
func (l *Loader) LoadImportPath(path string) (*Package, error) {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	return l.load(path, filepath.Join(l.ModuleDir, filepath.FromSlash(rel)))
}

// LoadDir loads the package in dir (which must be inside the module).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.ModuleDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: %s is outside module %s", dir, l.ModuleDir)
	}
	path := l.ModulePath
	if rel != "." {
		path += "/" + filepath.ToSlash(rel)
	}
	return l.load(path, abs)
}

// load parses and typechecks the package rooted at dir, caching by
// import path. Build constraints (GOOS/GOARCH, //go:build) are applied
// with the default build context, so the analysis sees exactly the
// file set a build on this platform would.
func (l *Loader) load(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.busy[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.busy[path] = true
	defer delete(l.busy, path)

	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", dir, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// WalkPackages returns every directory under root containing buildable
// Go files, skipping testdata, vendor, hidden, and underscore-prefixed
// directories — the same set `go build ./...` would visit.
func WalkPackages(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	sort.Strings(dirs)
	return dirs, err
}
