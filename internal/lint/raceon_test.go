//go:build race

package lint

// raceEnabled reports whether the test binary was built with the race
// detector. The analyzers are single-goroutine, so race instrumentation
// finds nothing here — it only makes whole-repo typechecking ~10x
// slower and steals CPU from the suite's timing-sensitive tests.
const raceEnabled = true
