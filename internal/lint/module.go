package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Module is every package of the repository loaded into one analysis
// universe, plus the interprocedural indexes the module analyzers
// share: the function-declaration index, the call graph, and the
// //ldlint:confined type registry. Where a *Pass sees one package, a
// *ModulePass sees the whole program — which is what the propagation
// analyzers need, because the contracts they check (a noalloc root
// staying alloc-clean, a sim scope staying wall-clock-free, a shard
// staying on its goroutine) are properties of call *paths*, and call
// paths do not respect package boundaries.
type Module struct {
	Fset       *token.FileSet
	Path       string // module path from go.mod
	Packages   []*Package
	Graph      *CallGraph
	ConfinedTy map[*types.TypeName]token.Pos // //ldlint:confined types, by type name object
}

// ModuleAnalyzer is one named check over the whole loaded module.
// Module analyzers run after the per-package suite when ldlint is
// invoked with -interproc.
type ModuleAnalyzer struct {
	// Name is the identifier used by -only/-disable flags and in
	// //ldlint:ignore suppressions.
	Name string
	// Doc is a one-line description shown by ldlint -list.
	Doc string
	// Run inspects the module and reports diagnostics via pass.Reportf.
	Run func(*ModulePass)
}

// ModuleAll lists every interprocedural analyzer, in the order they
// run. EscapeCheck is not in this list: it is a build-mode pass driven
// by the compiler rather than the call graph, enabled separately with
// -escapecheck.
var ModuleAll = []*ModuleAnalyzer{NoAllocProp, DetermReach, ShardConfine}

// ModuleByName returns the module analyzer with the given name, or nil.
func ModuleByName(name string) *ModuleAnalyzer {
	for _, a := range ModuleAll {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// KnownAnalyzerName reports whether name identifies any analyzer in the
// suite — per-package, module, or the escapecheck build pass. Used to
// validate -only/-disable and //ldlint:ignore targets, which must
// accept every analyzer regardless of which subset this run enables.
func KnownAnalyzerName(name string) bool {
	return ByName(name) != nil || ModuleByName(name) != nil || name == EscapeCheckName
}

// ModulePass carries the loaded module through one module analyzer.
type ModulePass struct {
	Module *Module

	sups     supIndex
	analyzer string
	out      *[]Diagnostic
}

// EdgeSuppressed reports whether a //ldlint:ignore for this analyzer
// sits on the call site at pos (same line or the line above) and marks
// it used. Propagation analyzers use this to cut traversal at
// deliberate contract boundaries — a cold-path call whose callee
// allocates by design — so the exemption is stated once, at the edge,
// instead of once per construct in the callee's subtree.
func (p *ModulePass) EdgeSuppressed(pos token.Pos) bool {
	if p.sups == nil {
		return false
	}
	pp := p.Module.Fset.Position(pos)
	if s := p.sups[supKey{pp.Filename, pp.Line, p.analyzer}]; s != nil {
		s.used = true
		return true
	}
	return false
}

// Reportf records a diagnostic at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	reportf(p.Module.Fset, p.out, p.analyzer, pos, format, args...)
}

// subPass builds a per-package Pass for reusing the intra-function
// checkers (checkNoAllocFunc, checkDeterminismFunc) from a module
// analyzer. Diagnostics land in out under the module analyzer's name.
func (p *ModulePass) subPass(pkg *Package, out *[]Diagnostic) *Pass {
	return &Pass{
		Fset:     pkg.Fset,
		Path:     pkg.Path,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		analyzer: p.analyzer,
		out:      out,
	}
}

// NewModule builds the shared interprocedural indexes over the loaded
// packages: the call graph and the confined-type registry.
func NewModule(fset *token.FileSet, modPath string, pkgs []*Package) *Module {
	m := &Module{
		Fset:       fset,
		Path:       modPath,
		Packages:   pkgs,
		ConfinedTy: make(map[*types.TypeName]token.Pos),
	}
	for _, pkg := range pkgs {
		collectConfinedTypes(pkg, m.ConfinedTy)
	}
	m.Graph = buildCallGraph(m)
	return m
}

// RunModule runs the given module analyzers and appends their
// diagnostics to out. Construct-level suppressions are applied by the
// caller (the driver holds the module-wide suppression set); the set is
// passed in here so propagation analyzers can additionally honor
// call-site suppressions as traversal cuts.
func (m *Module) RunModule(analyzers []*ModuleAnalyzer, sups []*suppression, out *[]Diagnostic) {
	pass := &ModulePass{Module: m, sups: buildSupIndex(sups), out: out}
	for _, a := range analyzers {
		pass.analyzer = a.Name
		a.Run(pass)
	}
}

// LocalPath reports whether path is this module or a package inside it.
func (m *Module) LocalPath(path string) bool {
	return path == m.Path || strings.HasPrefix(path, m.Path+"/")
}

// collectConfinedTypes records every type declaration carrying a
// //ldlint:confined directive in its doc comment. The directive marks
// single-goroutine-owned types (EngineShard, the qlog SPSC Producer)
// whose values the shardconfine analyzer keeps from escaping their
// owning goroutine.
func collectConfinedTypes(pkg *Package, out map[*types.TypeName]token.Pos) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				// The directive may sit on the GenDecl (single-spec form) or
				// on the TypeSpec inside a grouped declaration.
				if !hasDirective(gd.Doc, directiveConfined) && !hasDirective(ts.Doc, directiveConfined) {
					continue
				}
				if obj, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
					out[obj] = ts.Pos()
				}
			}
		}
	}
}

// confinedTypeName resolves t to a //ldlint:confined type name, looking
// through pointers and named-type chains. Returns nil when t is not
// confined.
func (m *Module) confinedTypeName(t types.Type) *types.TypeName {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Named:
			obj := u.Obj()
			if _, ok := m.ConfinedTy[obj]; ok {
				return obj
			}
			// An alias or defined type over another named type: one more
			// hop through the underlying type.
			if n, ok := u.Underlying().(*types.Named); ok && n != u {
				t = n
				continue
			}
			return nil
		default:
			return nil
		}
	}
}

// reportf is the shared diagnostic constructor for Pass and ModulePass.
func reportf(fset *token.FileSet, out *[]Diagnostic, analyzer string, pos token.Pos, format string, args ...any) {
	*out = append(*out, Diagnostic{
		Analyzer: analyzer,
		Pos:      fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}
