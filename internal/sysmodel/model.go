// Package sysmodel simulates the server-side resource behaviour the paper
// measures with NSD on its DETER testbed: per-connection memory,
// established and TIME_WAIT connection counts over time (Figures 13, 14),
// CPU utilization versus idle timeout (Figure 11), and per-query latency
// versus client RTT including connection setup, reuse, and Nagle-induced
// reassembly delays (Figure 15).
//
// The honest part of the reproduction is the *workload dynamics*: every
// connection open, reuse, idle close, and TIME_WAIT transition is driven
// by the actual replayed query stream through a discrete-event simulation
// of the connection state machine. The per-unit resource costs are
// constants calibrated to the paper's published measurements (see
// DefaultModel), so curve *shapes* — growth with timeout, crossovers
// between protocols, latency discontinuities — emerge from the workload
// rather than being baked in.
package sysmodel

import (
	"container/heap"
	"errors"
	"io"
	"net/netip"
	"time"

	"ldplayer/internal/metrics"
	"ldplayer/internal/trace"
)

// ResourceModel holds the per-unit costs of the modeled server.
type ResourceModel struct {
	// BaseMemory is the UDP-only server footprint. The paper's baseline
	// run shows ~2 GB (Figure 13a bottom line).
	BaseMemory int64
	// PerConnTCP is the memory held per established TCP connection:
	// kernel socket buffers (tcp_rmem/tcp_wmem on the 4.4 kernel) plus
	// NSD's per-connection buffers. Calibrated so the synthesized B-Root
	// workload at the paper's operating point (39 k q/s, 1.17 M clients,
	// 20 s timeout — which yields ~98 k established and ~276 k TIME_WAIT
	// connections under our client-dynamics model) lands at the paper's
	// measured 15 GB.
	PerConnTCP int64
	// PerConnTLSExtra is additional state per TLS session (OpenSSL
	// buffers and session state); calibrated to the paper's 18 GB TLS
	// total, i.e. ~30% over TCP.
	PerConnTLSExtra int64
	// PerTimeWait is the cost of a TIME_WAIT minisocket (tiny).
	PerTimeWait int64

	// CPUCores matches the paper's 24-core/48-thread server.
	CPUCores int
	// CostUDPQuery is the per-query CPU cost over UDP. It exceeds the
	// TCP cost, reproducing the paper's surprising observation that the
	// mostly-UDP baseline burns ~10% CPU while all-TCP burns ~5% — the
	// paper attributes the difference to NIC TCP offload.
	CostUDPQuery time.Duration
	// CostTCPQuery is the per-query CPU cost on an open TCP connection.
	CostTCPQuery time.Duration
	// CostTLSQuery adds TLS record-layer crypto.
	CostTLSQuery time.Duration
	// CostTCPHandshake and CostTLSHandshake are per-connection-setup
	// costs. The TLS handshake figure is calibrated to the paper's own
	// measurement — all-TLS CPU lands just *below* the UDP baseline and
	// only ~2 points higher at a 5 s timeout — which implies far cheaper
	// handshakes than a cold RSA sign (session caching and offload).
	CostTCPHandshake time.Duration
	CostTLSHandshake time.Duration
}

// DefaultModel returns constants calibrated to §5.2's published numbers
// (B-Root-17a at ~39 k q/s on a 24-core, 64 GB NSD server).
func DefaultModel() ResourceModel {
	return ResourceModel{
		BaseMemory:       2 << 30,
		PerConnTCP:       130 << 10,
		PerConnTLSExtra:  30 << 10,
		PerTimeWait:      4 << 10,
		CPUCores:         48,
		CostUDPQuery:     145 * time.Microsecond,
		CostTCPQuery:     70 * time.Microsecond,
		CostTLSQuery:     85 * time.Microsecond,
		CostTCPHandshake: 100 * time.Microsecond,
		CostTLSHandshake: 400 * time.Microsecond,
	}
}

// Config parameterizes one simulation run.
type Config struct {
	Model ResourceModel
	// RTT is the client↔server round-trip time (uniform; Figure 15
	// sweeps it 0–160 ms).
	RTT time.Duration
	// RTTFor, when set, gives each client its own RTT — the paper's
	// "based on a distribution" variant. It overrides RTT.
	RTTFor func(client netip.Addr) time.Duration
	// IdleTimeout is the server's TCP/TLS idle-connection timeout
	// (Figures 11/13/14 sweep 5–40 s).
	IdleTimeout time.Duration
	// TimeWait is the TIME_WAIT residence time (2×MSL; Linux: 60 s).
	TimeWait time.Duration
	// Nagle models the delayed-ACK/Nagle interaction: a response written
	// while the previous response on the same connection is still
	// unacknowledged stalls for min(DelayedAck, RTT) — the reassembly
	// delays §5.2.4 observes in packet traces.
	Nagle bool
	// DelayedAck is the delayed-ACK timer (default 40 ms).
	DelayedAck time.Duration
	// TLSHandshakeRTTs is the extra round trips of the TLS handshake
	// beyond TCP's one (default 2, TLS 1.2 full handshake).
	TLSHandshakeRTTs int
	// TLSComputeLatency is added client-visible handshake crypto time.
	TLSComputeLatency time.Duration
	// SampleEvery sets the resource-sampling period (default 10 s).
	SampleEvery time.Duration
	// Responder produces the response size in bytes for a query; wiring
	// the real authserver engine here makes bandwidth figures exact.
	// Defaults to a flat 120 bytes.
	Responder func(query []byte, src netip.Addr) int
	// KeepLatencies records per-query latency samples (memory scales
	// with trace size).
	KeepLatencies bool
}

func (c *Config) setDefaults() {
	if c.Model == (ResourceModel{}) {
		c.Model = DefaultModel()
	}
	if c.TimeWait <= 0 {
		c.TimeWait = 60 * time.Second
	}
	if c.DelayedAck <= 0 {
		c.DelayedAck = 40 * time.Millisecond
	}
	if c.TLSHandshakeRTTs == 0 {
		c.TLSHandshakeRTTs = 2
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 10 * time.Second
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 20 * time.Second
	}
}

// LatencySample ties one query's latency to its client, so experiments
// can slice by client activity (Figure 15b's non-busy clients).
type LatencySample struct {
	Client  netip.Addr
	Seconds float64
}

// Result carries everything one run produces.
type Result struct {
	Queries        int64
	ResponseBytes  int64
	ConnsOpened    int64
	Handshakes     int64
	Latencies      []LatencySample
	PerClientCount map[netip.Addr]int

	Memory      *metrics.TimeSeries // bytes
	Established *metrics.TimeSeries
	TimeWait    *metrics.TimeSeries
	CPUPercent  *metrics.TimeSeries // percent of all cores
	BandwidthMb *metrics.TimeSeries // response Mbit/s
}

// connState models one client's connection on the server.
type connState struct {
	// readyAt is when the connection (including any TLS handshake)
	// completes; queries before that queue behind the handshake.
	readyAt time.Time
	// lastUsed is the last query or response activity (idle timer base).
	lastUsed time.Time
	// lastResponse is when the previous response was written (Nagle).
	lastResponse time.Time
	// backToBack counts consecutive responses written within one RTT of
	// each other; with delayed ACKs every second one stalls.
	backToBack int
	tls        bool
	closed     bool
}

// event kinds for the DES heap.
type eventKind int

const (
	evIdleCheck eventKind = iota
	evTimeWaitExpire
	evSample
)

type event struct {
	at   time.Time
	kind eventKind
	conn *connState
	key  netip.Addr
}

type eventHeap []event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].at.Before(h[j].at) }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Simulate runs the trace through the connection state machine in virtual
// time.
func Simulate(r trace.Reader, cfg Config) (*Result, error) {
	cfg.setDefaults()
	m := cfg.Model

	res := &Result{
		PerClientCount: make(map[netip.Addr]int),
		Memory:         metrics.NewTimeSeries("memory"),
		Established:    metrics.NewTimeSeries("established"),
		TimeWait:       metrics.NewTimeSeries("time_wait"),
		CPUPercent:     metrics.NewTimeSeries("cpu"),
		BandwidthMb:    metrics.NewTimeSeries("bandwidth"),
	}

	conns := make(map[netip.Addr]*connState)
	var established, timeWait int64
	var busy time.Duration // CPU time accumulated this sample window
	var windowBytes int64  // response bytes this sample window
	var h eventHeap
	var started bool
	var windowStart time.Time

	sample := func(now time.Time) {
		mem := m.BaseMemory + timeWait*m.PerTimeWait
		// Established memory: count TLS separately.
		var estTLS int64
		for _, c := range conns {
			if !c.closed && c.tls {
				estTLS++
			}
		}
		mem += established * m.PerConnTCP
		mem += estTLS * m.PerConnTLSExtra
		res.Memory.Add(now, float64(mem))
		res.Established.Add(now, float64(established))
		res.TimeWait.Add(now, float64(timeWait))
		interval := cfg.SampleEvery.Seconds()
		res.CPUPercent.Add(now, busy.Seconds()/interval/float64(m.CPUCores)*100)
		res.BandwidthMb.Add(now, float64(windowBytes)*8/interval/1e6)
		busy = 0
		windowBytes = 0
	}

	closeConn := func(now time.Time, key netip.Addr, c *connState) {
		if c.closed {
			return
		}
		c.closed = true
		established--
		timeWait++
		delete(conns, key)
		heap.Push(&h, event{at: now.Add(cfg.TimeWait), kind: evTimeWaitExpire})
	}

	runEvents := func(until time.Time) {
		for len(h) > 0 && !h[0].at.After(until) {
			ev := heap.Pop(&h).(event)
			switch ev.kind {
			case evSample:
				sample(ev.at)
				heap.Push(&h, event{at: ev.at.Add(cfg.SampleEvery), kind: evSample})
			case evTimeWaitExpire:
				timeWait--
			case evIdleCheck:
				c := ev.conn
				if c.closed {
					break
				}
				idleAt := c.lastUsed.Add(cfg.IdleTimeout)
				if ev.at.Before(idleAt) {
					// Activity since scheduling: re-arm.
					heap.Push(&h, event{at: idleAt, kind: evIdleCheck, conn: c, key: ev.key})
					break
				}
				closeConn(ev.at, ev.key, c)
			}
		}
	}

	for {
		e, err := r.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, err
		}
		now := e.Time
		if !started {
			started = true
			windowStart = now
			heap.Push(&h, event{at: windowStart.Add(cfg.SampleEvery), kind: evSample})
		}
		runEvents(now)

		client := e.Src.Addr()
		res.Queries++
		res.PerClientCount[client]++
		rtt := cfg.RTT
		if cfg.RTTFor != nil {
			rtt = cfg.RTTFor(client)
		}

		respSize := 120
		if cfg.Responder != nil {
			respSize = cfg.Responder(e.Message, client)
		}
		res.ResponseBytes += int64(respSize)
		windowBytes += int64(respSize)

		var latency time.Duration
		switch e.Protocol {
		case trace.UDP:
			busy += m.CostUDPQuery
			latency = rtt
		case trace.TCP, trace.TLS:
			isTLS := e.Protocol == trace.TLS
			c := conns[client]
			if c == nil || c.closed || c.tls != isTLS {
				// Fresh connection: TCP handshake costs one RTT before
				// the query can go; TLS adds its handshake round trips
				// and crypto compute.
				ready := now.Add(rtt)
				busy += m.CostTCPHandshake
				res.ConnsOpened++
				res.Handshakes++
				if isTLS {
					ready = ready.Add(time.Duration(cfg.TLSHandshakeRTTs)*rtt + cfg.TLSComputeLatency)
					busy += m.CostTLSHandshake
				}
				c = &connState{readyAt: ready, lastUsed: now, tls: isTLS}
				conns[client] = c
				established++
				heap.Push(&h, event{at: now.Add(cfg.IdleTimeout), kind: evIdleCheck, conn: c, key: client})
			}
			// The query goes out when the connection is ready; the
			// response returns one RTT later.
			sendAt := now
			if c.readyAt.After(sendAt) {
				sendAt = c.readyAt
			}
			respAt := sendAt.Add(rtt)
			if isTLS {
				busy += m.CostTLSQuery
			} else {
				busy += m.CostTCPQuery
			}
			// Nagle/delayed-ACK: when responses go out back-to-back
			// (within one RTT, so the previous is unacknowledged), Nagle
			// holds the new segment until an ACK. The client's delayed
			// ACK acknowledges every second segment immediately, so every
			// other back-to-back response stalls for min(DelayedAck, RTT)
			// — stalls land in the latency tail, exactly the reassembly
			// delays §5.2.4 finds in packet traces.
			if cfg.Nagle && !c.lastResponse.IsZero() && respAt.Sub(c.lastResponse) < rtt {
				c.backToBack++
				if c.backToBack%2 == 1 {
					stall := cfg.DelayedAck
					if rtt < stall {
						stall = rtt
					}
					respAt = respAt.Add(stall)
				}
			} else {
				c.backToBack = 0
			}
			c.lastResponse = respAt
			c.lastUsed = respAt
			latency = respAt.Sub(now)
		}
		if cfg.KeepLatencies {
			res.Latencies = append(res.Latencies, LatencySample{Client: client, Seconds: latency.Seconds()})
		}
	}

	return res, nil
}

// FilterLatencies returns the latencies of clients whose total query
// count satisfies keep (e.g. non-busy clients: count < 250).
func FilterLatencies(res *Result, keep func(count int) bool) []float64 {
	var out []float64
	for _, s := range res.Latencies {
		if keep(res.PerClientCount[s.Client]) {
			out = append(out, s.Seconds)
		}
	}
	return out
}

// ClientLoadCDF returns the per-client query counts (Figure 15c input).
func ClientLoadCDF(res *Result) *metrics.CDF {
	vals := make([]float64, 0, len(res.PerClientCount))
	for _, c := range res.PerClientCount {
		vals = append(vals, float64(c))
	}
	return metrics.NewCDF(vals)
}
