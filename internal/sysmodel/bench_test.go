package sysmodel

import (
	"testing"
	"time"

	"ldplayer/internal/trace"
)

// BenchmarkSimulateTCP measures discrete-event throughput: simulated
// queries per wall-clock second determine how far past the paper's scale
// the what-if experiments can go.
func BenchmarkSimulateTCP(b *testing.B) {
	entries := make([]trace.Entry, 0, 50000)
	src := mkTraceB(b, 50000, 5000, 50*time.Microsecond, trace.TCP)
	entries = append(entries, src...)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Simulate(trace.NewSliceReader(entries), Config{
			RTT: 20 * time.Millisecond, IdleTimeout: 20 * time.Second,
			SampleEvery: time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Queries != int64(len(entries)) {
			b.Fatal("lost queries")
		}
	}
	b.ReportMetric(float64(len(entries)*b.N)/b.Elapsed().Seconds(), "queries/s")
}

// mkTraceB mirrors the test helper for benchmarks.
func mkTraceB(b *testing.B, n, nClients int, gap time.Duration, p trace.Protocol) []trace.Entry {
	b.Helper()
	t := &testing.T{}
	_ = t
	base := time.Unix(1_700_000_000, 0)
	out := make([]trace.Entry, n)
	msg := []byte{0, 1, 1, 0, 0, 1, 0, 0, 0, 0, 0, 0, 7, 'e', 'x', 'a', 'm', 'p', 'l', 'e', 0, 0, 1, 0, 1}
	for i := range out {
		out[i] = trace.Entry{
			Time:     base.Add(time.Duration(i) * gap),
			Src:      addrPortForClient(i % nClients),
			Dst:      addrPortForClient(1 << 20),
			Protocol: p,
			Message:  msg,
		}
	}
	return out
}
