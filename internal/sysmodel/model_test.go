package sysmodel

import (
	"math"
	"net/netip"
	"testing"
	"time"

	"ldplayer/internal/dnswire"
	"ldplayer/internal/metrics"
	"ldplayer/internal/trace"
)

// mkTrace builds queries at fixed gaps: client i of nClients, protocol p.
func mkTrace(t *testing.T, n, nClients int, gap time.Duration, p trace.Protocol) []trace.Entry {
	t.Helper()
	base := time.Unix(1_700_000_000, 0)
	out := make([]trace.Entry, n)
	for i := range out {
		m := dnswire.NewQuery(uint16(i), "example.com.", dnswire.TypeA)
		wire, err := m.Pack(nil)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = trace.Entry{
			Time:     base.Add(time.Duration(i) * gap),
			Src:      netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 0, byte(i % nClients >> 8), byte(i % nClients)}), 5353),
			Dst:      netip.MustParseAddrPort("192.0.2.53:53"),
			Protocol: p,
			Message:  wire,
		}
	}
	return out
}

func simulate(t *testing.T, entries []trace.Entry, cfg Config) *Result {
	t.Helper()
	cfg.KeepLatencies = true
	res, err := Simulate(trace.NewSliceReader(entries), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestUDPLatencyIsOneRTT(t *testing.T) {
	const rtt = 40 * time.Millisecond
	res := simulate(t, mkTrace(t, 100, 10, time.Millisecond, trace.UDP), Config{RTT: rtt})
	for _, s := range res.Latencies {
		if math.Abs(s.Seconds-rtt.Seconds()) > 1e-9 {
			t.Fatalf("UDP latency = %v, want %v", s.Seconds, rtt.Seconds())
		}
	}
	if res.ConnsOpened != 0 {
		t.Errorf("UDP opened %d connections", res.ConnsOpened)
	}
}

func TestTCPFreshVersusReusedLatency(t *testing.T) {
	const rtt = 100 * time.Millisecond
	// One client, two queries far enough apart to not queue but close
	// enough to reuse.
	entries := mkTrace(t, 2, 1, 2*time.Second, trace.TCP)
	res := simulate(t, entries, Config{RTT: rtt, IdleTimeout: 20 * time.Second})
	if len(res.Latencies) != 2 {
		t.Fatalf("latencies = %d", len(res.Latencies))
	}
	fresh, reused := res.Latencies[0].Seconds, res.Latencies[1].Seconds
	if math.Abs(fresh-2*rtt.Seconds()) > 1e-9 {
		t.Errorf("fresh TCP latency = %.3f, want 2 RTT = %.3f", fresh, 2*rtt.Seconds())
	}
	if math.Abs(reused-rtt.Seconds()) > 1e-9 {
		t.Errorf("reused TCP latency = %.3f, want 1 RTT", reused)
	}
	if res.ConnsOpened != 1 {
		t.Errorf("conns opened = %d", res.ConnsOpened)
	}
}

func TestTLSFreshLatencyIsFourRTTPlusCompute(t *testing.T) {
	const rtt = 50 * time.Millisecond
	const crypto = 3 * time.Millisecond
	entries := mkTrace(t, 1, 1, time.Second, trace.TLS)
	res := simulate(t, entries, Config{RTT: rtt, TLSComputeLatency: crypto})
	want := 4*rtt.Seconds() + crypto.Seconds()
	if got := res.Latencies[0].Seconds; math.Abs(got-want) > 1e-9 {
		t.Errorf("fresh TLS latency = %.4f, want %.4f", got, want)
	}
}

func TestQueryDuringHandshakeQueues(t *testing.T) {
	const rtt = 100 * time.Millisecond
	// Two queries 10ms apart: the second arrives mid-handshake and must
	// wait for it, landing between 1 and 2 RTT.
	entries := mkTrace(t, 2, 1, 10*time.Millisecond, trace.TCP)
	res := simulate(t, entries, Config{RTT: rtt})
	second := res.Latencies[1].Seconds
	want := (rtt - 10*time.Millisecond + rtt).Seconds() // handshake remainder + 1 RTT
	if math.Abs(second-want) > 1e-9 {
		t.Errorf("queued query latency = %.3f, want %.3f", second, want)
	}
}

func TestIdleTimeoutClosesAndTimeWaitExpires(t *testing.T) {
	const gap = 30 * time.Second
	// One client, queries 30s apart with a 10s idle timeout: each query
	// opens a fresh connection.
	entries := mkTrace(t, 4, 1, gap, trace.TCP)
	cfg := Config{RTT: time.Millisecond, IdleTimeout: 10 * time.Second, TimeWait: 60 * time.Second, SampleEvery: time.Second}
	res := simulate(t, entries, cfg)
	if res.ConnsOpened != 4 {
		t.Errorf("conns opened = %d, want 4", res.ConnsOpened)
	}
	// Established gauge never exceeds 1; TIME_WAIT reaches >= 1 and stays
	// bounded by the 60s residence over 30s gaps (max 2).
	for _, p := range res.Established.Points() {
		if p.V > 1 {
			t.Errorf("established = %v at %v", p.V, p.T)
		}
	}
	maxTW := 0.0
	for _, p := range res.TimeWait.Points() {
		if p.V > maxTW {
			maxTW = p.V
		}
	}
	if maxTW < 1 || maxTW > 2 {
		t.Errorf("max TIME_WAIT = %v, want 1..2", maxTW)
	}
}

func TestEstablishedGrowsWithTimeout(t *testing.T) {
	// 20 clients round-robin with 1s entry gaps: each client returns
	// every 20s. A 5s timeout closes the connection between visits; a
	// 40s timeout keeps all 20 alive.
	entries := mkTrace(t, 2000, 20, time.Second, trace.TCP)
	est := func(timeout time.Duration) float64 {
		res := simulate(t, entries, Config{RTT: time.Millisecond, IdleTimeout: timeout, SampleEvery: 10 * time.Second})
		return res.Established.SteadyState(100 * time.Second).P50
	}
	e5, e40 := est(5*time.Second), est(40*time.Second)
	if !(e40 > e5) {
		t.Errorf("established: 5s=%.1f 40s=%.1f, want growth with timeout", e5, e40)
	}
	if e40 < 15 { // all 20 clients revisit within 20s < 40s
		t.Errorf("established at 40s timeout = %.1f, want ~20", e40)
	}
}

func TestMemoryModelCalibration(t *testing.T) {
	m := DefaultModel()
	// At the paper's operating point our B-Root workload model produces
	// ~98k established and ~276k TIME_WAIT connections at a 20 s timeout
	// (see TestPaperScaleFootprint in internal/experiments); the constants
	// must put that at the paper's measured 15 GB for TCP and ~18 GB for
	// TLS.
	memTCP := m.BaseMemory + 98_000*m.PerConnTCP + 276_000*m.PerTimeWait
	if gb := float64(memTCP) / (1 << 30); gb < 13.5 || gb > 16.5 {
		t.Errorf("calibrated TCP memory = %.1f GB, want ~15", gb)
	}
	memTLS := memTCP + 98_000*m.PerConnTLSExtra
	if gb := float64(memTLS) / (1 << 30); gb < 16.5 || gb > 19.5 {
		t.Errorf("calibrated TLS memory = %.1f GB, want ~18", gb)
	}
}

func TestCPUOrderingUDPAboveTCP(t *testing.T) {
	// Same workload over UDP vs TCP: the calibrated model must reproduce
	// the paper's ordering (UDP-dominated baseline > all-TCP).
	mkP := func(p trace.Protocol) []trace.Entry { return mkTrace(t, 20000, 50, time.Millisecond, p) }
	cpu := func(p trace.Protocol) float64 {
		res := simulate(t, mkP(p), Config{RTT: time.Millisecond, SampleEvery: 5 * time.Second})
		return res.CPUPercent.SteadyState(5 * time.Second).P50
	}
	udp, tcp, tls := cpu(trace.UDP), cpu(trace.TCP), cpu(trace.TLS)
	if !(udp > tcp) {
		t.Errorf("CPU: udp=%.2f%% tcp=%.2f%%, want udp > tcp", udp, tcp)
	}
	if !(tls > tcp) {
		t.Errorf("CPU: tls=%.2f%% tcp=%.2f%%, want tls > tcp", tls, tcp)
	}
}

func TestNagleStallsAlternateBackToBackResponses(t *testing.T) {
	const rtt = 100 * time.Millisecond
	// Three rapid queries on one connection produce back-to-back
	// responses; delayed ACKs cover every second segment, so exactly the
	// middle response stalls.
	entries := mkTrace(t, 3, 1, time.Millisecond, trace.TCP)
	with := simulate(t, entries, Config{RTT: rtt, Nagle: true})
	without := simulate(t, entries, Config{RTT: rtt})
	if w, wo := with.Latencies[1].Seconds, without.Latencies[1].Seconds; w <= wo {
		t.Errorf("second response: Nagle latency %.3f <= plain %.3f", w, wo)
	}
	if w, wo := with.Latencies[2].Seconds, without.Latencies[2].Seconds; w > wo+1e-9 {
		t.Errorf("third response: stalled (%.3f > %.3f) though its ACK was immediate", w, wo)
	}
}

func TestBandwidthUsesResponder(t *testing.T) {
	entries := mkTrace(t, 1000, 10, time.Millisecond, trace.UDP)
	res := simulate(t, entries, Config{
		RTT:         time.Millisecond,
		SampleEvery: 500 * time.Millisecond,
		Responder:   func(q []byte, src netip.Addr) int { return 500 },
	})
	if res.ResponseBytes != 500_000 {
		t.Errorf("response bytes = %d", res.ResponseBytes)
	}
	// 1000 q/s * 500 B = 4 Mbit/s.
	bw := metrics.Summarize(res.BandwidthMb.Values())
	if bw.P50 < 3 || bw.P50 > 5 {
		t.Errorf("bandwidth median = %.2f Mb/s, want ~4", bw.P50)
	}
}

func TestFilterLatenciesAndClientLoad(t *testing.T) {
	// 2 clients: client 0 sends 100 queries, client 1 sends 5.
	base := time.Unix(0, 0)
	var entries []trace.Entry
	mk := func(client byte, i int) trace.Entry {
		m := dnswire.NewQuery(uint16(i), "x.example.", dnswire.TypeA)
		wire, _ := m.Pack(nil)
		return trace.Entry{
			Time: base.Add(time.Duration(i) * 10 * time.Millisecond),
			Src:  netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 0, 0, client}), 1),
			Dst:  netip.MustParseAddrPort("192.0.2.53:53"), Protocol: trace.UDP, Message: wire,
		}
	}
	for i := 0; i < 100; i++ {
		entries = append(entries, mk(0, i))
	}
	for i := 100; i < 105; i++ {
		entries = append(entries, mk(1, i))
	}
	res := simulate(t, entries, Config{RTT: 10 * time.Millisecond})
	nonBusy := FilterLatencies(res, func(c int) bool { return c < 50 })
	if len(nonBusy) != 5 {
		t.Errorf("non-busy latencies = %d, want 5", len(nonBusy))
	}
	cdf := ClientLoadCDF(res)
	if cdf.N() != 2 || cdf.At(5) != 0.5 {
		t.Errorf("client-load CDF: N=%d At(5)=%v", cdf.N(), cdf.At(5))
	}
}

func TestProtocolSwitchReopens(t *testing.T) {
	// Same client switching TCP->TLS must not reuse the TCP connection.
	base := time.Unix(0, 0)
	m := dnswire.NewQuery(1, "x.example.", dnswire.TypeA)
	wire, _ := m.Pack(nil)
	src := netip.MustParseAddrPort("10.0.0.1:1")
	dst := netip.MustParseAddrPort("192.0.2.53:53")
	entries := []trace.Entry{
		{Time: base, Src: src, Dst: dst, Protocol: trace.TCP, Message: wire},
		{Time: base.Add(time.Second), Src: src, Dst: dst, Protocol: trace.TLS, Message: wire},
	}
	res := simulate(t, entries, Config{RTT: 10 * time.Millisecond})
	if res.ConnsOpened != 2 {
		t.Errorf("conns opened = %d, want 2", res.ConnsOpened)
	}
}

func TestPerClientRTTDistribution(t *testing.T) {
	// Two clients alternate; one is 10ms away, the other 200ms.
	entries := mkTrace(t, 40, 2, 50*time.Millisecond, trace.UDP)
	res := simulate(t, entries, Config{
		RTTFor: func(c netip.Addr) time.Duration {
			if c.As4()[3] == 0 {
				return 10 * time.Millisecond
			}
			return 200 * time.Millisecond
		},
	})
	var near, far int
	for _, s := range res.Latencies {
		switch {
		case math.Abs(s.Seconds-0.010) < 1e-9:
			near++
		case math.Abs(s.Seconds-0.200) < 1e-9:
			far++
		default:
			t.Fatalf("unexpected latency %v", s.Seconds)
		}
	}
	if near != 20 || far != 20 {
		t.Errorf("near=%d far=%d", near, far)
	}
}

// addrPortForClient builds a stable synthetic client address.
func addrPortForClient(i int) netip.AddrPort {
	return netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)}), 5353)
}
