package dnswire

import (
	"errors"
	"strings"
)

// Name handling. Names are represented in presentation form as
// dot-terminated lowercase strings ("www.example.com."); the root is ".".
// Wire form uses length-prefixed labels with RFC 1035 §4.1.4 compression
// pointers.

// Errors returned by name encoding and decoding.
var (
	ErrNameTooLong    = errors.New("dnswire: name exceeds 255 octets")
	ErrLabelTooLong   = errors.New("dnswire: label exceeds 63 octets")
	ErrEmptyLabel     = errors.New("dnswire: empty label in name")
	ErrPointerLoop    = errors.New("dnswire: compression pointer loop")
	ErrBadPointer     = errors.New("dnswire: compression pointer out of range")
	ErrTruncatedName  = errors.New("dnswire: truncated name")
	ErrTrailingGarbge = errors.New("dnswire: bad name syntax")
)

const (
	maxNameWire  = 255
	maxLabelWire = 63
	// maxPointers bounds pointer chasing; a legal message cannot need more
	// hops than it has bytes/2, and 128 is far beyond any real name.
	maxPointers = 128
)

// CanonicalName lowercases s and ensures it is dot-terminated. It does not
// validate label lengths; use SplitLabels or AppendName for that.
func CanonicalName(s string) string {
	if s == "" || s == "." {
		return "."
	}
	s = strings.ToLower(s)
	if !strings.HasSuffix(s, ".") {
		s += "."
	}
	return s
}

// SplitLabels splits a canonical name into its labels, excluding the root.
// SplitLabels(".") returns nil.
func SplitLabels(name string) []string {
	name = CanonicalName(name)
	if name == "." {
		return nil
	}
	return strings.Split(strings.TrimSuffix(name, "."), ".")
}

// CountLabels returns the number of labels in name, excluding the root.
func CountLabels(name string) int {
	return len(SplitLabels(name))
}

// ParentName returns the name with its leftmost label removed; the parent
// of "." is ".".
func ParentName(name string) string {
	name = CanonicalName(name)
	if name == "." {
		return "."
	}
	i := strings.IndexByte(name, '.')
	if i+1 >= len(name) {
		return "."
	}
	return name[i+1:]
}

// IsSubdomain reports whether child is equal to or below parent.
func IsSubdomain(child, parent string) bool {
	child, parent = CanonicalName(child), CanonicalName(parent)
	if parent == "." {
		return true
	}
	if child == parent {
		return true
	}
	return strings.HasSuffix(child, "."+parent)
}

// nameWireLen returns the uncompressed wire length of a canonical name.
func nameWireLen(name string) int {
	//ldlint:ignore noallocprop CanonicalName is a pass-through for already-canonical names; only mixed-case or undotted input pays its lowercasing/concat
	name = CanonicalName(name)
	if name == "." {
		return 1
	}
	return len(name) + 1
}

// compressor tracks names already emitted during Pack so later
// occurrences can be replaced by pointers. Entries hold canonical
// suffixes (substrings of the names being packed, so recording one is
// allocation-free) and their offsets into the message. The entry count
// is small in practice, so a linear scan beats a map: it needs no
// per-message allocation and the slice is reusable across messages via
// a sync.Pool (see Pack).
type compressor struct {
	entries []compEntry
}

type compEntry struct {
	suffix string
	off    uint16
}

// maxCompressorEntries bounds the scan; suffixes beyond it are simply
// not recorded (correct, just marginally less compression on messages
// with very many distinct names).
const maxCompressorEntries = 128

// compressionMap is the historical name for the compression state
// threaded through rdata encoders; it is now a pooled struct.
type compressionMap = *compressor

func (c *compressor) lookup(suffix string) (int, bool) {
	for i := range c.entries {
		if c.entries[i].suffix == suffix {
			return int(c.entries[i].off), true
		}
	}
	return 0, false
}

func (c *compressor) add(suffix string, off int) {
	if len(c.entries) < maxCompressorEntries {
		c.entries = append(c.entries, compEntry{suffix: suffix, off: uint16(off)})
	}
}

// reset clears the entries, dropping string references so pooled
// compressors do not pin packed messages in memory.
func (c *compressor) reset() {
	clear(c.entries)
	c.entries = c.entries[:0]
}

// appendName appends the wire encoding of name to buf. When cmp is non-nil
// and msgStart gives the offset of the message start within buf, suffixes
// already present in cmp are replaced by compression pointers and new
// suffixes are recorded (only offsets that fit in 14 bits are recorded, per
// RFC 1035). For a canonical name the encoding performs no allocations:
// suffixes are substrings of name and labels are appended directly.
//
//ldlint:noalloc
func appendName(buf []byte, name string, cmp compressionMap, msgStart int) ([]byte, error) {
	//ldlint:ignore noallocprop CanonicalName is a pass-through for already-canonical names; only mixed-case or undotted input pays its lowercasing/concat
	name = CanonicalName(name)
	if nameWireLen(name) > maxNameWire {
		return buf, ErrNameTooLong
	}
	if name == "." {
		return append(buf, 0), nil
	}
	// rest is always the canonical dot-terminated suffix starting at the
	// current label, e.g. "www.example.com." → "example.com." → "com.".
	for rest := name; rest != ""; {
		if cmp != nil {
			if off, ok := cmp.lookup(rest); ok {
				return append(buf, byte(0xC0|off>>8), byte(off)), nil
			}
			if off := len(buf) - msgStart; off < 0x4000 {
				cmp.add(rest, off)
			}
		}
		i := strings.IndexByte(rest, '.')
		if i == 0 {
			return buf, ErrEmptyLabel
		}
		if i > maxLabelWire {
			return buf, ErrLabelTooLong
		}
		buf = append(buf, byte(i))
		buf = append(buf, rest[:i]...)
		rest = rest[i+1:]
	}
	return append(buf, 0), nil
}

// unpackName decodes a possibly compressed name from msg starting at off.
// It returns the canonical presentation form and the offset just past the
// name's in-place encoding (i.e. past the first pointer if one occurred).
func unpackName(msg []byte, off int) (string, int, error) {
	var sb strings.Builder
	ptrBudget := maxPointers
	// next is the offset to resume at after the name; set when the first
	// pointer is followed.
	next := -1
	totalWire := 0
	for {
		if off >= len(msg) {
			return "", 0, ErrTruncatedName
		}
		b := int(msg[off])
		switch {
		case b == 0:
			if next == -1 {
				next = off + 1
			}
			if sb.Len() == 0 {
				return ".", next, nil
			}
			return strings.ToLower(sb.String()), next, nil
		case b&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return "", 0, ErrTruncatedName
			}
			ptr := (b&0x3F)<<8 | int(msg[off+1])
			if next == -1 {
				next = off + 2
			}
			if ptr >= off {
				// Forward (or self) pointers are illegal and would loop.
				return "", 0, ErrBadPointer
			}
			ptrBudget--
			if ptrBudget <= 0 {
				return "", 0, ErrPointerLoop
			}
			off = ptr
		case b&0xC0 != 0:
			return "", 0, errors.New("dnswire: reserved label type")
		default:
			if off+1+b > len(msg) {
				return "", 0, ErrTruncatedName
			}
			totalWire += b + 1
			if totalWire > maxNameWire {
				return "", 0, ErrNameTooLong
			}
			sb.Write(msg[off+1 : off+1+b])
			sb.WriteByte('.')
			off += 1 + b
		}
	}
}

// ValidName reports whether name is syntactically legal: non-empty labels
// of at most 63 octets and a total wire length of at most 255 octets.
func ValidName(name string) bool {
	name = CanonicalName(name)
	if nameWireLen(name) > maxNameWire {
		return false
	}
	if name == "." {
		return true
	}
	for _, l := range SplitLabels(name) {
		if l == "" || len(l) > maxLabelWire {
			return false
		}
	}
	return true
}

// CompareNames orders names in canonical DNS order (RFC 4034 §6.1):
// by reversed label sequence. It is used for NSEC chains and deterministic
// zone-file output.
func CompareNames(a, b string) int {
	la, lb := SplitLabels(a), SplitLabels(b)
	for i := 1; i <= len(la) && i <= len(lb); i++ {
		x, y := la[len(la)-i], lb[len(lb)-i]
		if x != y {
			if x < y {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(la) < len(lb):
		return -1
	case len(la) > len(lb):
		return 1
	}
	return 0
}
