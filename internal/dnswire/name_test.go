package dnswire

import (
	"bytes"
	"strings"
	"testing"
)

func TestCanonicalName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", "."},
		{".", "."},
		{"example.com", "example.com."},
		{"example.com.", "example.com."},
		{"WWW.Example.COM", "www.example.com."},
	}
	for _, c := range cases {
		if got := CanonicalName(c.in); got != c.want {
			t.Errorf("CanonicalName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSplitLabels(t *testing.T) {
	if got := SplitLabels("."); got != nil {
		t.Errorf("SplitLabels(.) = %v, want nil", got)
	}
	got := SplitLabels("www.example.com.")
	want := []string{"www", "example", "com"}
	if len(got) != len(want) {
		t.Fatalf("SplitLabels = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("label %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestParentName(t *testing.T) {
	cases := []struct{ in, want string }{
		{".", "."},
		{"com.", "."},
		{"example.com.", "com."},
		{"a.b.example.com.", "b.example.com."},
	}
	for _, c := range cases {
		if got := ParentName(c.in); got != c.want {
			t.Errorf("ParentName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestIsSubdomain(t *testing.T) {
	cases := []struct {
		child, parent string
		want          bool
	}{
		{"www.example.com.", "example.com.", true},
		{"example.com.", "example.com.", true},
		{"example.com.", ".", true},
		{"notexample.com.", "example.com.", false},
		{"com.", "example.com.", false},
		{"xexample.com.", "example.com.", false},
	}
	for _, c := range cases {
		if got := IsSubdomain(c.child, c.parent); got != c.want {
			t.Errorf("IsSubdomain(%q, %q) = %v, want %v", c.child, c.parent, got, c.want)
		}
	}
}

func TestNameRoundTrip(t *testing.T) {
	names := []string{".", "com.", "example.com.", "www.example.com.",
		"a.very.deep.chain.of.labels.example.org.",
		strings.Repeat("a", 63) + ".example.com."}
	for _, name := range names {
		buf, err := appendName(nil, name, nil, 0)
		if err != nil {
			t.Fatalf("appendName(%q): %v", name, err)
		}
		got, next, err := unpackName(buf, 0)
		if err != nil {
			t.Fatalf("unpackName(%q): %v", name, err)
		}
		if got != name {
			t.Errorf("round trip %q -> %q", name, got)
		}
		if next != len(buf) {
			t.Errorf("next offset = %d, want %d", next, len(buf))
		}
	}
}

func TestNameEncodingErrors(t *testing.T) {
	if _, err := appendName(nil, strings.Repeat("a", 64)+".com.", nil, 0); err != ErrLabelTooLong {
		t.Errorf("long label: err = %v, want ErrLabelTooLong", err)
	}
	long := strings.Repeat("abcdefg.", 40) // 320 octets
	if _, err := appendName(nil, long, nil, 0); err != ErrNameTooLong {
		t.Errorf("long name: err = %v, want ErrNameTooLong", err)
	}
	if _, err := appendName(nil, "a..com.", nil, 0); err != ErrEmptyLabel {
		t.Errorf("empty label: err = %v, want ErrEmptyLabel", err)
	}
}

func TestNameCompression(t *testing.T) {
	cmp := &compressor{}
	buf, err := appendName(nil, "www.example.com.", cmp, 0)
	if err != nil {
		t.Fatal(err)
	}
	first := len(buf)
	// Second name shares the example.com. suffix: should compress to
	// "mail" label + 2-byte pointer.
	buf, err = appendName(buf, "mail.example.com.", cmp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(buf)-first, 1+4+2; got != want {
		t.Errorf("compressed encoding is %d octets, want %d", got, want)
	}
	name, _, err := unpackName(buf, first)
	if err != nil {
		t.Fatal(err)
	}
	if name != "mail.example.com." {
		t.Errorf("decompressed %q", name)
	}
	// Exact repeat should be a bare pointer.
	prev := len(buf)
	buf, err = appendName(buf, "www.example.com.", cmp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf)-prev != 2 {
		t.Errorf("exact repeat encoded in %d octets, want 2", len(buf)-prev)
	}
}

func TestUnpackNamePointerLoop(t *testing.T) {
	// A pointer to itself (offset 0 pointing at offset 0).
	msg := []byte{0xC0, 0x00}
	if _, _, err := unpackName(msg, 0); err == nil {
		t.Error("self pointer: expected error")
	}
	// Two pointers pointing at each other.
	msg = []byte{0xC0, 0x02, 0xC0, 0x00}
	if _, _, err := unpackName(msg, 2); err == nil {
		t.Error("pointer cycle: expected error")
	}
}

func TestUnpackNameTruncation(t *testing.T) {
	cases := [][]byte{
		{},                 // no bytes at all
		{3, 'a', 'b'},      // label runs past end
		{0xC0},             // pointer missing second byte
		{3, 'c', 'o', 'm'}, // missing terminator
		{0x80, 'x'},        // reserved label type
	}
	for i, msg := range cases {
		if _, _, err := unpackName(msg, 0); err == nil {
			t.Errorf("case %d: expected error for % x", i, msg)
		}
	}
}

func TestValidName(t *testing.T) {
	if !ValidName("www.example.com") {
		t.Error("www.example.com should be valid")
	}
	if ValidName("a..b.com") {
		t.Error("empty label should be invalid")
	}
	if ValidName(strings.Repeat("a", 64) + ".com") {
		t.Error("64-octet label should be invalid")
	}
}

func TestCompareNames(t *testing.T) {
	ordered := []string{".", "com.", "example.com.", "a.example.com.", "z.example.com.", "org."}
	for i := 0; i < len(ordered); i++ {
		for j := 0; j < len(ordered); j++ {
			got := CompareNames(ordered[i], ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("CompareNames(%q, %q) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestAppendNameRootEncoding(t *testing.T) {
	buf, err := appendName(nil, ".", &compressor{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte{0}) {
		t.Errorf("root encodes as % x, want 00", buf)
	}
}
