package dnswire

import (
	"math/rand"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// randomName draws a syntactically valid DNS name.
func randomName(r *rand.Rand) string {
	depth := 1 + r.Intn(5)
	labels := make([]string, depth)
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789-"
	for i := range labels {
		n := 1 + r.Intn(12)
		var sb strings.Builder
		for j := 0; j < n; j++ {
			sb.WriteByte(alphabet[r.Intn(len(alphabet)-1)]) // avoid '-' heavy
		}
		labels[i] = sb.String()
	}
	return strings.Join(labels, ".") + "."
}

func randomRData(r *rand.Rand) RData {
	switch r.Intn(8) {
	case 0:
		var b [4]byte
		r.Read(b[:])
		return A{Addr: netip.AddrFrom4(b)}
	case 1:
		var b [16]byte
		r.Read(b[:])
		b[0] = 0x20 // keep it a real v6, not 4-in-6
		return AAAA{Addr: netip.AddrFrom16(b)}
	case 2:
		return NS{Host: randomName(r)}
	case 3:
		return CNAME{Target: randomName(r)}
	case 4:
		return MX{Preference: uint16(r.Uint32()), Host: randomName(r)}
	case 5:
		n := 1 + r.Intn(3)
		ss := make([]string, n)
		for i := range ss {
			b := make([]byte, r.Intn(40))
			r.Read(b)
			ss[i] = string(b)
		}
		return TXT{Strings: ss}
	case 6:
		return SOA{
			MName: randomName(r), RName: randomName(r),
			Serial: r.Uint32(), Refresh: r.Uint32(), Retry: r.Uint32(),
			Expire: r.Uint32(), Minimum: r.Uint32(),
		}
	default:
		// At least one octet: nil vs empty []byte is indistinguishable on
		// the wire, so a zero-length payload cannot round-trip by DeepEqual.
		data := make([]byte, 1+r.Intn(63))
		r.Read(data)
		return RawRData{RRType: Type(300 + r.Intn(200)), Data: data}
	}
}

// TestQuickNameRoundTrip: any valid name survives encode/decode unchanged.
func TestQuickNameRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		name := randomName(r)
		if nameWireLen(name) > maxNameWire {
			return true // generator rarely exceeds; skip
		}
		buf, err := appendName(nil, name, nil, 0)
		if err != nil {
			return false
		}
		got, next, err := unpackName(buf, 0)
		return err == nil && got == name && next == len(buf)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickMessageRoundTrip: random messages survive Pack/Unpack.
func TestQuickMessageRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := &Message{
			Header: Header{
				ID: uint16(r.Uint32()), QR: r.Intn(2) == 0,
				AA: r.Intn(2) == 0, RD: r.Intn(2) == 0,
				Rcode: Rcode(r.Intn(6)),
			},
		}
		m.Question = append(m.Question, Question{
			Name: randomName(r), Type: TypeA, Class: ClassINET,
		})
		for i := 0; i < r.Intn(4); i++ {
			m.Answer = append(m.Answer, RR{
				Name: randomName(r), Class: ClassINET,
				TTL: r.Uint32() % 86400, Data: randomRData(r),
			})
		}
		for i := 0; i < r.Intn(3); i++ {
			m.Authority = append(m.Authority, RR{
				Name: randomName(r), Class: ClassINET,
				TTL: r.Uint32() % 86400, Data: NS{Host: randomName(r)},
			})
		}
		if r.Intn(2) == 0 {
			m.Edns = &EDNS{UDPSize: uint16(512 + r.Intn(4096)), DO: r.Intn(2) == 0}
		}
		wire, err := m.Pack(nil)
		if err != nil {
			t.Logf("pack: %v", err)
			return false
		}
		var got Message
		if err := got.Unpack(wire); err != nil {
			t.Logf("unpack: %v", err)
			return false
		}
		// Normalize empty slices vs nil for comparison.
		if len(got.Answer) == 0 {
			got.Answer = nil
		}
		if len(got.Authority) == 0 {
			got.Authority = nil
		}
		if len(got.Additional) == 0 {
			got.Additional = nil
		}
		if len(m.Answer) == 0 {
			m.Answer = nil
		}
		if len(m.Authority) == 0 {
			m.Authority = nil
		}
		if len(m.Additional) == 0 {
			m.Additional = nil
		}
		return reflect.DeepEqual(&got, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickUnpackNeverPanics: arbitrary bytes must never panic the decoder.
func TestQuickUnpackNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		var m Message
		defer func() {
			if p := recover(); p != nil {
				t.Errorf("panic on % x: %v", data, p)
			}
		}()
		_ = m.Unpack(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickCompareNamesIsOrdering: CompareNames is a total order consistent
// with equality and antisymmetry.
func TestQuickCompareNamesIsOrdering(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randomName(r), randomName(r), randomName(r)
		if CompareNames(a, a) != 0 {
			return false
		}
		if CompareNames(a, b) != -CompareNames(b, a) {
			return false
		}
		// Transitivity spot check.
		if CompareNames(a, b) <= 0 && CompareNames(b, c) <= 0 && CompareNames(a, c) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickPackIdempotent: packing the same message twice yields identical
// bytes (compression is deterministic).
func TestQuickPackIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := NewQuery(uint16(r.Uint32()), randomName(r), TypeA)
		m.Answer = append(m.Answer, RR{Name: m.Question[0].Name, Class: ClassINET, TTL: 60, Data: randomRData(r)})
		w1, err1 := m.Pack(nil)
		w2, err2 := m.Pack(nil)
		if err1 != nil || err2 != nil {
			return err1 != nil && err2 != nil
		}
		return string(w1) == string(w2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
