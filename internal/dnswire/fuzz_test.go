package dnswire

import (
	"bytes"
	"net/netip"
	"testing"
)

// fuzzSeeds returns a corpus of well-formed wire messages plus crafted
// hostile encodings (compression-pointer loops, truncations, forged
// counts) so the fuzzer starts from interesting shapes.
func fuzzSeeds(t testing.TB) [][]byte {
	t.Helper()
	var seeds [][]byte

	pack := func(m *Message) {
		t.Helper()
		wire, err := m.Pack(nil)
		if err != nil {
			t.Fatal(err)
		}
		seeds = append(seeds, wire)
	}

	q := NewQuery(0x1234, "www.example.com.", TypeA)
	pack(q)

	resp := ResponseTo(q)
	resp.Answer = append(resp.Answer, RR{
		Name: "www.example.com.", Class: ClassINET, TTL: 300,
		Data: A{Addr: netip.MustParseAddr("192.0.2.80")},
	})
	resp.Authority = append(resp.Authority, RR{
		Name: "example.com.", Class: ClassINET, TTL: 86400,
		Data: NS{Host: "ns1.example.com."},
	})
	resp.Additional = append(resp.Additional, RR{
		Name: "ns1.example.com.", Class: ClassINET, TTL: 86400,
		Data: A{Addr: netip.MustParseAddr("192.0.2.1")},
	})
	pack(resp)

	edns := NewQuery(0xBEEF, "example.org.", TypeTXT)
	edns.Edns = &EDNS{UDPSize: 4096, DO: true}
	pack(edns)

	// Hostile: self-referential compression pointer in the question name.
	self := []byte{
		0x00, 0x01, 0x01, 0x00, 0x00, 0x01, 0, 0, 0, 0, 0, 0,
		0xC0, 0x0C, // pointer to itself
		0x00, 0x01, 0x00, 0x01,
	}
	seeds = append(seeds, self)

	// Hostile: two pointers chasing each other.
	loop := []byte{
		0x00, 0x02, 0x01, 0x00, 0x00, 0x01, 0, 0, 0, 0, 0, 0,
		0xC0, 0x0E, // -> offset 14
		0xC0, 0x0C, // -> offset 12
		0x00, 0x01, 0x00, 0x01,
	}
	seeds = append(seeds, loop)

	// Hostile: forged ARCOUNT with no body.
	forged := []byte{0x00, 0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xFF, 0xFF}
	seeds = append(seeds, forged)

	// Hostile: header only, then truncated mid-name.
	seeds = append(seeds, []byte{0, 4, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 3, 'w', 'w'})

	return seeds
}

// FuzzMessageUnpack asserts the decoder never panics and never produces
// out-of-bounds structures on hostile input: compression pointers are
// bounded, names stay within the 255-octet wire limit, and section
// slices cannot be inflated beyond what the payload can carry.
func FuzzMessageUnpack(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Message
		if err := m.Unpack(data); err != nil {
			return
		}
		// Each question consumed ≥5 octets, each RR ≥11.
		if 5*len(m.Question)+11*(len(m.Answer)+len(m.Authority)+len(m.Additional)) > len(data) {
			t.Fatalf("sections larger than payload: %d/%d/%d/%d from %d bytes",
				len(m.Question), len(m.Answer), len(m.Authority), len(m.Additional), len(data))
		}
		names := make([]string, 0, 8)
		for _, q := range m.Question {
			names = append(names, q.Name)
		}
		for _, sec := range [][]RR{m.Answer, m.Authority, m.Additional} {
			for _, rr := range sec {
				names = append(names, rr.Name)
			}
		}
		for _, name := range names {
			// Decoding may widen invalid bytes to U+FFFD (3 octets), so
			// allow up to 3x the 255-octet wire bound in presentation form.
			if len(name) > 3*maxNameWire {
				t.Fatalf("decoded name of %d bytes exceeds wire-format bound", len(name))
			}
		}
	})
}

// FuzzPackUnpackRoundTrip asserts the decode→encode composition reaches a
// fixed point: anything our decoder accepts and our encoder can express
// must re-decode losslessly, and a second encode must be byte-identical.
// (The first re-encode may legitimately differ from the input — name
// compression and OPT placement are normalized — and may legitimately
// fail for names that have no presentation form, e.g. labels containing
// dots. After that, Pack∘Unpack must be the identity.)
func FuzzPackUnpackRoundTrip(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Message
		if err := m.Unpack(data); err != nil {
			return
		}
		wire2, err := m.Pack(nil)
		if err != nil {
			return // decoded form has no wire expression; acceptable
		}
		var m2 Message
		if err := m2.Unpack(wire2); err != nil {
			t.Fatalf("our own encoding does not decode: %v\nwire: %x", err, wire2)
		}
		wire3, err := m2.Pack(nil)
		if err != nil {
			t.Fatalf("re-encode of our own encoding failed: %v", err)
		}
		if !bytes.Equal(wire2, wire3) {
			t.Fatalf("encode is not a fixed point:\nwire2: %x\nwire3: %x", wire2, wire3)
		}
	})
}
