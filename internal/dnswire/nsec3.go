package dnswire

import (
	"encoding/base32"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strings"
)

// NSEC3 support (RFC 5155): hashed authenticated denial, used by most
// signed TLD zones (com, net, org all run NSEC3). LDplayer needs to carry
// these records faithfully when reconstructing TLD zones from traces.

// NSEC3 type codes.
const (
	TypeNSEC3      Type = 50
	TypeNSEC3PARAM Type = 51
)

func init() {
	typeNames[TypeNSEC3] = "NSEC3"
	typeNames[TypeNSEC3PARAM] = "NSEC3PARAM"
	typeValues["NSEC3"] = TypeNSEC3
	typeValues["NSEC3PARAM"] = TypeNSEC3PARAM
}

// base32Hex is the unpadded base32hex alphabet NSEC3 owner/next names use.
var base32Hex = base32.HexEncoding.WithPadding(base32.NoPadding)

// DecodeBase32Hex decodes the NSEC3 next-hash presentation form.
func DecodeBase32Hex(s string) ([]byte, error) {
	return base32Hex.DecodeString(strings.ToUpper(s))
}

// NSEC3 is a hashed denial record (RFC 5155 §3).
type NSEC3 struct {
	HashAlg    uint8 // 1 = SHA-1
	Flags      uint8 // 0x01 = opt-out
	Iterations uint16
	Salt       []byte // empty = no salt
	NextHashed []byte // hashed next owner, raw bytes
	Types      []Type
}

// Type implements RData.
func (NSEC3) Type() Type { return TypeNSEC3 }

// String implements RData in the master-file form
// "1 1 0 AB12 NEXTHASHB32 A RRSIG".
func (n NSEC3) String() string {
	salt := "-"
	if len(n.Salt) > 0 {
		salt = strings.ToUpper(hex.EncodeToString(n.Salt))
	}
	parts := []string{
		fmt.Sprintf("%d %d %d %s %s", n.HashAlg, n.Flags, n.Iterations, salt,
			strings.ToUpper(base32Hex.EncodeToString(n.NextHashed))),
	}
	for _, t := range n.Types {
		parts = append(parts, t.String())
	}
	return strings.Join(parts, " ")
}

func (n NSEC3) appendTo(buf []byte, _ compressionMap, _ int) ([]byte, error) {
	if len(n.Salt) > 255 {
		return buf, fmt.Errorf("dnswire: NSEC3 salt exceeds 255 octets")
	}
	if len(n.NextHashed) == 0 || len(n.NextHashed) > 255 {
		return buf, fmt.Errorf("dnswire: NSEC3 next-hash length %d", len(n.NextHashed))
	}
	buf = append(buf, n.HashAlg, n.Flags)
	buf = binary.BigEndian.AppendUint16(buf, n.Iterations)
	buf = append(buf, byte(len(n.Salt)))
	buf = append(buf, n.Salt...)
	buf = append(buf, byte(len(n.NextHashed)))
	buf = append(buf, n.NextHashed...)
	return appendTypeBitmap(buf, n.Types), nil
}

// NSEC3PARAM advertises the zone's NSEC3 parameters at the apex
// (RFC 5155 §4).
type NSEC3PARAM struct {
	HashAlg    uint8
	Flags      uint8
	Iterations uint16
	Salt       []byte
}

// Type implements RData.
func (NSEC3PARAM) Type() Type { return TypeNSEC3PARAM }

// String implements RData.
func (p NSEC3PARAM) String() string {
	salt := "-"
	if len(p.Salt) > 0 {
		salt = strings.ToUpper(hex.EncodeToString(p.Salt))
	}
	return fmt.Sprintf("%d %d %d %s", p.HashAlg, p.Flags, p.Iterations, salt)
}

func (p NSEC3PARAM) appendTo(buf []byte, _ compressionMap, _ int) ([]byte, error) {
	if len(p.Salt) > 255 {
		return buf, fmt.Errorf("dnswire: NSEC3PARAM salt exceeds 255 octets")
	}
	buf = append(buf, p.HashAlg, p.Flags)
	buf = binary.BigEndian.AppendUint16(buf, p.Iterations)
	buf = append(buf, byte(len(p.Salt)))
	return append(buf, p.Salt...), nil
}

// unpackNSEC3 decodes an NSEC3 rdata.
func unpackNSEC3(msg []byte, off, rdlen int) (RData, error) {
	end := off + rdlen
	if rdlen < 5 {
		return nil, errTruncatedRData
	}
	n := NSEC3{
		HashAlg:    msg[off],
		Flags:      msg[off+1],
		Iterations: binary.BigEndian.Uint16(msg[off+2:]),
	}
	p := off + 4
	saltLen := int(msg[p])
	p++
	if p+saltLen > end {
		return nil, errTruncatedRData
	}
	n.Salt = append([]byte(nil), msg[p:p+saltLen]...)
	p += saltLen
	if p >= end {
		return nil, errTruncatedRData
	}
	hashLen := int(msg[p])
	p++
	if p+hashLen > end || hashLen == 0 {
		return nil, errTruncatedRData
	}
	n.NextHashed = append([]byte(nil), msg[p:p+hashLen]...)
	p += hashLen
	types, err := parseTypeBitmap(msg[p:end])
	if err != nil {
		return nil, err
	}
	n.Types = types
	return n, nil
}

// unpackNSEC3PARAM decodes an NSEC3PARAM rdata.
func unpackNSEC3PARAM(msg []byte, off, rdlen int) (RData, error) {
	end := off + rdlen
	if rdlen < 5 {
		return nil, errTruncatedRData
	}
	p := NSEC3PARAM{
		HashAlg:    msg[off],
		Flags:      msg[off+1],
		Iterations: binary.BigEndian.Uint16(msg[off+2:]),
	}
	saltLen := int(msg[off+4])
	if off+5+saltLen > end {
		return nil, errTruncatedRData
	}
	p.Salt = append([]byte(nil), msg[off+5:off+5+saltLen]...)
	return p, nil
}
