package dnswire

import (
	"net/netip"
	"reflect"
	"testing"
)

func mustAddr(t *testing.T, s string) netip.Addr {
	t.Helper()
	a, err := netip.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func sampleResponse(t *testing.T) *Message {
	return &Message{
		Header: Header{ID: 0xBEEF, QR: true, AA: true, RD: true, RA: true, Rcode: RcodeNoError},
		Question: []Question{
			{Name: "www.example.com.", Type: TypeA, Class: ClassINET},
		},
		Answer: []RR{
			{Name: "www.example.com.", Class: ClassINET, TTL: 300,
				Data: A{Addr: mustAddr(t, "192.0.2.1")}},
			{Name: "www.example.com.", Class: ClassINET, TTL: 300,
				Data: A{Addr: mustAddr(t, "192.0.2.2")}},
		},
		Authority: []RR{
			{Name: "example.com.", Class: ClassINET, TTL: 3600,
				Data: NS{Host: "ns1.example.com."}},
		},
		Additional: []RR{
			{Name: "ns1.example.com.", Class: ClassINET, TTL: 3600,
				Data: A{Addr: mustAddr(t, "192.0.2.53")}},
		},
	}
}

func TestMessageRoundTrip(t *testing.T) {
	m := sampleResponse(t)
	wire, err := m.Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	var got Message
	if err := got.Unpack(wire); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, m) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", &got, m)
	}
}

func TestMessageCompressionShrinks(t *testing.T) {
	m := sampleResponse(t)
	wire, err := m.Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Uncompressed, the repeated owner names alone would add
	// len("www.example.com.")+1 per repetition. Check the total size is
	// well under a naive encoding.
	naive := 12
	for _, q := range m.Question {
		naive += nameWireLen(q.Name) + 4
	}
	for _, sec := range [][]RR{m.Answer, m.Authority, m.Additional} {
		for _, rr := range sec {
			naive += nameWireLen(rr.Name) + 10 + 64 // generous rdata bound
		}
	}
	if len(wire) >= naive {
		t.Errorf("packed %d octets; expected compression below %d", len(wire), naive)
	}
}

func TestRDataRoundTrips(t *testing.T) {
	rrs := []RR{
		{Name: "a.example.", Class: ClassINET, TTL: 60, Data: A{Addr: mustAddr(t, "203.0.113.9")}},
		{Name: "a.example.", Class: ClassINET, TTL: 60, Data: AAAA{Addr: mustAddr(t, "2001:db8::1")}},
		{Name: "example.", Class: ClassINET, TTL: 60, Data: NS{Host: "ns.example."}},
		{Name: "w.example.", Class: ClassINET, TTL: 60, Data: CNAME{Target: "a.example."}},
		{Name: "9.example.", Class: ClassINET, TTL: 60, Data: PTR{Target: "host.example."}},
		{Name: "example.", Class: ClassINET, TTL: 60, Data: MX{Preference: 10, Host: "mail.example."}},
		{Name: "example.", Class: ClassINET, TTL: 60, Data: TXT{Strings: []string{"v=spf1 -all", "x"}}},
		{Name: "example.", Class: ClassINET, TTL: 60, Data: SOA{
			MName: "ns.example.", RName: "root.example.", Serial: 2026070500,
			Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 3600}},
		{Name: "_dns._tcp.example.", Class: ClassINET, TTL: 60, Data: SRV{
			Priority: 0, Weight: 5, Port: 853, Target: "a.example."}},
		{Name: "sub.example.", Class: ClassINET, TTL: 60, Data: DS{
			KeyTag: 12345, Algorithm: 8, DigestType: 2, Digest: []byte{1, 2, 3, 4}}},
		{Name: "example.", Class: ClassINET, TTL: 60, Data: DNSKEY{
			Flags: 256, Protocol: 3, Algorithm: 8, PublicKey: []byte{9, 8, 7}}},
		{Name: "example.", Class: ClassINET, TTL: 60, Data: RRSIG{
			TypeCovered: TypeA, Algorithm: 8, Labels: 2, OrigTTL: 60,
			Expiration: 1700000000, Inception: 1690000000, KeyTag: 12345,
			SignerName: "example.", Signature: []byte{0xAA, 0xBB}}},
		{Name: "a.example.", Class: ClassINET, TTL: 60, Data: NSEC{
			NextName: "b.example.", Types: []Type{TypeA, TypeNS, TypeRRSIG, TypeCAA}}},
		{Name: "x.example.", Class: ClassINET, TTL: 60, Data: RawRData{RRType: Type(999), Data: []byte{1, 2, 3}}},
	}
	for _, rr := range rrs {
		m := &Message{Header: Header{ID: 1, QR: true}, Answer: []RR{rr}}
		wire, err := m.Pack(nil)
		if err != nil {
			t.Fatalf("%s: pack: %v", rr.Type(), err)
		}
		var got Message
		if err := got.Unpack(wire); err != nil {
			t.Fatalf("%s: unpack: %v", rr.Type(), err)
		}
		if len(got.Answer) != 1 {
			t.Fatalf("%s: %d answers", rr.Type(), len(got.Answer))
		}
		if !reflect.DeepEqual(got.Answer[0], rr) {
			t.Errorf("%s mismatch:\n got %+v\nwant %+v", rr.Type(), got.Answer[0], rr)
		}
	}
}

func TestEDNSRoundTrip(t *testing.T) {
	m := NewQuery(7, "example.com.", TypeA)
	m.Edns = &EDNS{UDPSize: 4096, DO: true, Options: []EDNSOption{{Code: 10, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}}}}
	wire, err := m.Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	var got Message
	if err := got.Unpack(wire); err != nil {
		t.Fatal(err)
	}
	if got.Edns == nil {
		t.Fatal("EDNS lost in round trip")
	}
	if got.Edns.UDPSize != 4096 || !got.Edns.DO {
		t.Errorf("EDNS = %+v", got.Edns)
	}
	if len(got.Edns.Options) != 1 || got.Edns.Options[0].Code != 10 {
		t.Errorf("options = %+v", got.Edns.Options)
	}
	if len(got.Additional) != 0 {
		t.Errorf("OPT leaked into Additional: %v", got.Additional)
	}
}

func TestUnpackRejectsForgedCounts(t *testing.T) {
	m := NewQuery(1, "example.com.", TypeA)
	wire, err := m.Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Forge an ANCOUNT of 65535 with no records behind it.
	wire[6], wire[7] = 0xFF, 0xFF
	var got Message
	if err := got.Unpack(wire); err == nil {
		t.Error("expected error for forged section count")
	}
}

func TestUnpackTruncated(t *testing.T) {
	m := sampleResponse(t)
	wire, err := m.Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	var got Message
	for cut := 1; cut < len(wire); cut += 3 {
		if err := got.Unpack(wire[:cut]); err == nil && cut < len(wire) {
			// Some prefixes may parse if counts say fewer records, but a
			// strict prefix of this fixed message must always fail.
			t.Errorf("Unpack accepted %d-octet prefix of %d-octet message", cut, len(wire))
		}
	}
}

func TestResponseTo(t *testing.T) {
	q := NewQuery(42, "example.org.", TypeAAAA)
	r := ResponseTo(q)
	if !r.Header.QR || r.Header.ID != 42 || !r.Header.RD {
		t.Errorf("header = %+v", r.Header)
	}
	if len(r.Question) != 1 || r.Question[0] != q.Question[0] {
		t.Errorf("question = %+v", r.Question)
	}
}

func TestMessageReset(t *testing.T) {
	m := sampleResponse(t)
	m.Edns = &EDNS{UDPSize: 512}
	m.Reset()
	if len(m.Question)+len(m.Answer)+len(m.Authority)+len(m.Additional) != 0 {
		t.Error("Reset left records behind")
	}
	if m.Edns != nil {
		t.Error("Reset left EDNS behind")
	}
	if m.Header != (Header{}) {
		t.Error("Reset left header state")
	}
}

func TestTypeParseStringRoundTrip(t *testing.T) {
	for typ := range typeNames {
		got, err := ParseType(typ.String())
		if err != nil || got != typ {
			t.Errorf("ParseType(%s) = %v, %v", typ, got, err)
		}
	}
	if got, err := ParseType("TYPE4242"); err != nil || got != Type(4242) {
		t.Errorf("ParseType(TYPE4242) = %v, %v", got, err)
	}
	if _, err := ParseType("BOGUS"); err == nil {
		t.Error("ParseType(BOGUS) should fail")
	}
}

func TestClassParseStringRoundTrip(t *testing.T) {
	for _, c := range []Class{ClassINET, ClassCH, ClassANY} {
		got, err := ParseClass(c.String())
		if err != nil || got != c {
			t.Errorf("ParseClass(%s) = %v, %v", c, got, err)
		}
	}
}

func TestNSECBitmapRoundTrip(t *testing.T) {
	types := []Type{TypeA, TypeNS, TypeSOA, TypeTXT, TypeAAAA, TypeRRSIG, TypeNSEC, TypeDNSKEY, TypeCAA}
	buf := appendTypeBitmap(nil, types)
	got, err := parseTypeBitmap(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, types) {
		t.Errorf("bitmap round trip: got %v, want %v", got, types)
	}
}

func TestPackedLenMatchesPack(t *testing.T) {
	m := sampleResponse(t)
	wire, err := m.Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	n, err := m.PackedLen()
	if err != nil {
		t.Fatal(err)
	}
	if n != len(wire) {
		t.Errorf("PackedLen = %d, len(Pack) = %d", n, len(wire))
	}
}

func TestHeaderFlagRoundTrip(t *testing.T) {
	h := Header{ID: 5, QR: true, Opcode: OpcodeNotify, AA: true, TC: true,
		RD: true, RA: true, AD: true, CD: true, Rcode: RcodeRefused}
	var got Header
	got.setFlags(h.flags())
	got.ID = h.ID
	if got != h {
		t.Errorf("flag round trip: got %+v, want %+v", got, h)
	}
}
