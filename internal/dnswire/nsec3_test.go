package dnswire

import (
	"reflect"
	"testing"
)

func TestNSEC3RoundTrip(t *testing.T) {
	rr := RR{Name: "tol0cul0f8dsp0jb2nmdab2le1mk53bb.com.", Class: ClassINET, TTL: 86400,
		Data: NSEC3{
			HashAlg:    1,
			Flags:      1, // opt-out
			Iterations: 0,
			Salt:       []byte{0xAB, 0x12},
			NextHashed: []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20},
			Types:      []Type{TypeNS, TypeDS, TypeRRSIG},
		}}
	m := &Message{Header: Header{ID: 1, QR: true}, Answer: []RR{rr}}
	wire, err := m.Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	var got Message
	if err := got.Unpack(wire); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Answer[0], rr) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got.Answer[0], rr)
	}
}

func TestNSEC3PARAMRoundTrip(t *testing.T) {
	for _, salt := range [][]byte{nil, {0xDE, 0xAD}} {
		rr := RR{Name: "com.", Class: ClassINET, TTL: 0,
			Data: NSEC3PARAM{HashAlg: 1, Iterations: 5, Salt: salt}}
		m := &Message{Header: Header{ID: 2, QR: true}, Answer: []RR{rr}}
		wire, err := m.Pack(nil)
		if err != nil {
			t.Fatal(err)
		}
		var got Message
		if err := got.Unpack(wire); err != nil {
			t.Fatal(err)
		}
		gp := got.Answer[0].Data.(NSEC3PARAM)
		wp := rr.Data.(NSEC3PARAM)
		if gp.HashAlg != wp.HashAlg || gp.Iterations != wp.Iterations {
			t.Errorf("round trip = %+v", gp)
		}
		if len(salt) == 0 && len(gp.Salt) != 0 {
			t.Errorf("empty salt round trip = %v", gp.Salt)
		}
	}
}

func TestNSEC3StringForm(t *testing.T) {
	n := NSEC3{HashAlg: 1, Flags: 1, Iterations: 0, Salt: nil,
		NextHashed: []byte{0xFF, 0x00}, Types: []Type{TypeNS}}
	s := n.String()
	if s != "1 1 0 - VS00 NS" {
		t.Errorf("string = %q", s)
	}
	p := NSEC3PARAM{HashAlg: 1, Iterations: 10, Salt: []byte{0xAB}}
	if p.String() != "1 0 10 AB" {
		t.Errorf("param string = %q", p.String())
	}
}

func TestNSEC3TruncatedRejected(t *testing.T) {
	// Craft a message with a short NSEC3 rdata.
	m := &Message{Header: Header{ID: 3, QR: true}, Answer: []RR{{
		Name: "x.com.", Class: ClassINET, TTL: 1,
		Data: RawRData{RRType: TypeNSEC3, Data: []byte{1, 0}},
	}}}
	wire, err := m.Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	var got Message
	if err := got.Unpack(wire); err == nil {
		t.Error("truncated NSEC3 accepted")
	}
}

func TestParseTypeKnowsNSEC3(t *testing.T) {
	for _, c := range []struct {
		s string
		t Type
	}{{"NSEC3", TypeNSEC3}, {"NSEC3PARAM", TypeNSEC3PARAM}} {
		got, err := ParseType(c.s)
		if err != nil || got != c.t {
			t.Errorf("ParseType(%s) = %v, %v", c.s, got, err)
		}
		if c.t.String() != c.s {
			t.Errorf("String() = %q", c.t.String())
		}
	}
}
