package dnswire

import (
	"encoding/binary"
	"errors"
)

// EDNS models the OPT pseudo-record (RFC 6891). The paper's DNSSEC
// experiments (§5.1) hinge on the DO bit and advertised UDP size, so both
// are first-class fields.
type EDNS struct {
	UDPSize       uint16
	ExtendedRcode uint8
	Version       uint8
	DO            bool
	Options       []EDNSOption
}

// EDNSOption is a raw EDNS option TLV.
type EDNSOption struct {
	Code uint16
	Data []byte
}

// DefaultEDNSSize is the UDP payload size advertised by the replay engine
// when a mutation enables EDNS without specifying a size; 4096 matches the
// configuration common at root servers during the paper's trace epochs.
const DefaultEDNSSize = 4096

// errEDNSOptTooLong is hoisted out of the noalloc appendTo.
var errEDNSOptTooLong = errors.New("dnswire: EDNS options exceed 65535 octets")

// appendTo appends the OPT pseudo-record encoding.
//
//ldlint:noalloc
func (e *EDNS) appendTo(buf []byte) ([]byte, error) {
	buf = append(buf, 0) // root owner name
	buf = binary.BigEndian.AppendUint16(buf, uint16(TypeOPT))
	buf = binary.BigEndian.AppendUint16(buf, e.UDPSize)
	var ttl uint32
	ttl |= uint32(e.ExtendedRcode) << 24
	ttl |= uint32(e.Version) << 16
	if e.DO {
		ttl |= 1 << 15
	}
	buf = binary.BigEndian.AppendUint32(buf, ttl)
	lenAt := len(buf)
	buf = append(buf, 0, 0)
	for _, opt := range e.Options {
		buf = binary.BigEndian.AppendUint16(buf, opt.Code)
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(opt.Data)))
		buf = append(buf, opt.Data...)
	}
	rdlen := len(buf) - lenAt - 2
	if rdlen > 0xFFFF {
		return buf, errEDNSOptTooLong
	}
	binary.BigEndian.PutUint16(buf[lenAt:], uint16(rdlen))
	return buf, nil
}

// unpackEDNS reconstructs an EDNS from the OPT record's reinterpreted
// class and TTL fields plus its rdata.
func unpackEDNS(name string, class Class, ttl uint32, rdata []byte) (*EDNS, error) {
	if name != "." {
		return nil, errors.New("dnswire: OPT record with non-root owner")
	}
	e := &EDNS{
		UDPSize:       uint16(class),
		ExtendedRcode: uint8(ttl >> 24),
		Version:       uint8(ttl >> 16),
		DO:            ttl&(1<<15) != 0,
	}
	for len(rdata) > 0 {
		if len(rdata) < 4 {
			return nil, errors.New("dnswire: truncated EDNS option")
		}
		code := binary.BigEndian.Uint16(rdata)
		n := int(binary.BigEndian.Uint16(rdata[2:]))
		if len(rdata) < 4+n {
			return nil, errors.New("dnswire: truncated EDNS option data")
		}
		e.Options = append(e.Options, EDNSOption{
			Code: code,
			Data: append([]byte(nil), rdata[4:4+n]...),
		})
		rdata = rdata[4+n:]
	}
	return e, nil
}

// WireLen returns the packed size of the OPT record.
func (e *EDNS) WireLen() int {
	n := 1 + 2 + 2 + 4 + 2 // name, type, class, ttl, rdlength
	for _, opt := range e.Options {
		n += 4 + len(opt.Data)
	}
	return n
}

// Clone returns a deep copy of e, or nil when e is nil.
func (e *EDNS) Clone() *EDNS {
	if e == nil {
		return nil
	}
	c := *e
	c.Options = make([]EDNSOption, len(e.Options))
	for i, opt := range e.Options {
		c.Options[i] = EDNSOption{Code: opt.Code, Data: append([]byte(nil), opt.Data...)}
	}
	return &c
}
