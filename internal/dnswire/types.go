// Package dnswire implements the DNS wire protocol: message encoding and
// decoding with name compression, the resource-record types needed for
// hierarchy emulation and trace replay (including the DNSSEC types), and
// EDNS0. It is the substrate every other LDplayer package builds on.
//
// The design follows the decode-into-value style: Unpack fills a
// caller-supplied Message so hot replay paths can reuse allocations, while
// Pack appends to a caller-supplied buffer.
package dnswire

import "fmt"

// Type is a DNS resource-record type code (RFC 1035 §3.2.2 and successors).
type Type uint16

// Resource-record type codes used by LDplayer.
const (
	TypeNone   Type = 0
	TypeA      Type = 1
	TypeNS     Type = 2
	TypeCNAME  Type = 5
	TypeSOA    Type = 6
	TypePTR    Type = 12
	TypeMX     Type = 15
	TypeTXT    Type = 16
	TypeAAAA   Type = 28
	TypeSRV    Type = 33
	TypeOPT    Type = 41
	TypeDS     Type = 43
	TypeRRSIG  Type = 46
	TypeNSEC   Type = 47
	TypeDNSKEY Type = 48
	TypeANY    Type = 255
	TypeCAA    Type = 257
)

var typeNames = map[Type]string{
	TypeNone:   "NONE",
	TypeA:      "A",
	TypeNS:     "NS",
	TypeCNAME:  "CNAME",
	TypeSOA:    "SOA",
	TypePTR:    "PTR",
	TypeMX:     "MX",
	TypeTXT:    "TXT",
	TypeAAAA:   "AAAA",
	TypeSRV:    "SRV",
	TypeOPT:    "OPT",
	TypeDS:     "DS",
	TypeRRSIG:  "RRSIG",
	TypeNSEC:   "NSEC",
	TypeDNSKEY: "DNSKEY",
	TypeANY:    "ANY",
	TypeCAA:    "CAA",
}

var typeValues = func() map[string]Type {
	m := make(map[string]Type, len(typeNames))
	for t, s := range typeNames {
		m[s] = t
	}
	return m
}()

// String returns the mnemonic for t, or the RFC 3597 TYPE### form for
// unknown codes.
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("TYPE%d", uint16(t))
}

// ParseType converts a type mnemonic (or TYPE### form) back to a Type.
func ParseType(s string) (Type, error) {
	if t, ok := typeValues[s]; ok {
		return t, nil
	}
	var n uint16
	if _, err := fmt.Sscanf(s, "TYPE%d", &n); err == nil {
		return Type(n), nil
	}
	return TypeNone, fmt.Errorf("dnswire: unknown RR type %q", s)
}

// Class is a DNS class code. Only IN matters in practice; CH appears in
// version.bind-style probes.
type Class uint16

// DNS class codes.
const (
	ClassINET Class = 1
	ClassCH   Class = 3
	ClassANY  Class = 255
)

// String returns the mnemonic for c.
func (c Class) String() string {
	switch c {
	case ClassINET:
		return "IN"
	case ClassCH:
		return "CH"
	case ClassANY:
		return "ANY"
	}
	return fmt.Sprintf("CLASS%d", uint16(c))
}

// ParseClass converts a class mnemonic back to a Class.
func ParseClass(s string) (Class, error) {
	switch s {
	case "IN":
		return ClassINET, nil
	case "CH":
		return ClassCH, nil
	case "ANY":
		return ClassANY, nil
	}
	var n uint16
	if _, err := fmt.Sscanf(s, "CLASS%d", &n); err == nil {
		return Class(n), nil
	}
	return 0, fmt.Errorf("dnswire: unknown class %q", s)
}

// Opcode is the DNS header operation code.
type Opcode uint8

// Opcodes.
const (
	OpcodeQuery  Opcode = 0
	OpcodeIQuery Opcode = 1
	OpcodeStatus Opcode = 2
	OpcodeNotify Opcode = 4
	OpcodeUpdate Opcode = 5
)

// String returns the mnemonic for o.
func (o Opcode) String() string {
	switch o {
	case OpcodeQuery:
		return "QUERY"
	case OpcodeIQuery:
		return "IQUERY"
	case OpcodeStatus:
		return "STATUS"
	case OpcodeNotify:
		return "NOTIFY"
	case OpcodeUpdate:
		return "UPDATE"
	}
	return fmt.Sprintf("OPCODE%d", uint8(o))
}

// Rcode is the DNS response code.
type Rcode uint8

// Response codes.
const (
	RcodeNoError  Rcode = 0
	RcodeFormErr  Rcode = 1
	RcodeServFail Rcode = 2
	RcodeNXDomain Rcode = 3
	RcodeNotImp   Rcode = 4
	RcodeRefused  Rcode = 5
)

// String returns the mnemonic for r.
func (r Rcode) String() string {
	switch r {
	case RcodeNoError:
		return "NOERROR"
	case RcodeFormErr:
		return "FORMERR"
	case RcodeServFail:
		return "SERVFAIL"
	case RcodeNXDomain:
		return "NXDOMAIN"
	case RcodeNotImp:
		return "NOTIMP"
	case RcodeRefused:
		return "REFUSED"
	}
	return fmt.Sprintf("RCODE%d", uint8(r))
}

// Header flag bit masks within the third/fourth header bytes, expressed on
// the 16-bit flags word.
const (
	flagQR uint16 = 1 << 15
	flagAA uint16 = 1 << 10
	flagTC uint16 = 1 << 9
	flagRD uint16 = 1 << 8
	flagRA uint16 = 1 << 7
	flagAD uint16 = 1 << 5
	flagCD uint16 = 1 << 4
)

// MaxUDPSize is the classic 512-byte DNS/UDP payload limit (RFC 1035).
const MaxUDPSize = 512

// MaxMessageSize is the largest message Pack will produce and Unpack will
// accept: the TCP two-byte length prefix bounds messages at 64 KiB.
const MaxMessageSize = 1<<16 - 1
