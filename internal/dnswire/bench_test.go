package dnswire

import (
	"net/netip"
	"testing"
)

func benchResponse() *Message {
	m := &Message{Header: Header{ID: 1, QR: true, AA: true}}
	m.Question = []Question{{Name: "www.example.com.", Type: TypeA, Class: ClassINET}}
	for i := 0; i < 4; i++ {
		m.Answer = append(m.Answer, RR{Name: "www.example.com.", Class: ClassINET, TTL: 300,
			Data: A{Addr: netip.AddrFrom4([4]byte{192, 0, 2, byte(i)})}})
	}
	m.Authority = append(m.Authority, RR{Name: "example.com.", Class: ClassINET, TTL: 3600,
		Data: NS{Host: "ns1.example.com."}})
	m.Additional = append(m.Additional, RR{Name: "ns1.example.com.", Class: ClassINET, TTL: 3600,
		Data: A{Addr: netip.AddrFrom4([4]byte{192, 0, 2, 53})}})
	m.Edns = &EDNS{UDPSize: 4096, DO: true}
	return m
}

// BenchmarkPackResponse measures the hot response-encoding path with name
// compression.
func BenchmarkPackResponse(b *testing.B) {
	m := benchResponse()
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = m.Pack(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnpackResponse measures the hot decode path.
func BenchmarkUnpackResponse(b *testing.B) {
	wire, err := benchResponse().Pack(nil)
	if err != nil {
		b.Fatal(err)
	}
	var m Message
	b.ReportAllocs()
	b.SetBytes(int64(len(wire)))
	for i := 0; i < b.N; i++ {
		if err := m.Unpack(wire); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPackQuery measures minimal query encoding (the replay
// generator's path).
func BenchmarkPackQuery(b *testing.B) {
	q := NewQuery(1, "www.example.com.", TypeA)
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = q.Pack(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}
