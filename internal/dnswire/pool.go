package dnswire

import "sync"

// msgPool recycles Message scratch values. Reset retains section slice
// capacity, so a pooled Message unpacks and repacks typical queries and
// responses without growing allocations after warm-up.
var msgPool = sync.Pool{New: func() any { return new(Message) }}

// GetMessage returns a cleared Message from the pool. Callers must not
// retain references into the message (names, sections, EDNS) after
// returning it with PutMessage.
func GetMessage() *Message {
	return msgPool.Get().(*Message)
}

// PutMessage resets m and returns it to the pool. Passing nil is a no-op.
func PutMessage(m *Message) {
	if m == nil {
		return
	}
	m.Reset()
	msgPool.Put(m)
}
