package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync"
)

// Header is the fixed 12-octet DNS message header, with the flag word
// exploded into fields.
type Header struct {
	ID     uint16
	QR     bool // response
	Opcode Opcode
	AA     bool // authoritative answer
	TC     bool // truncated
	RD     bool // recursion desired
	RA     bool // recursion available
	AD     bool // authentic data
	CD     bool // checking disabled
	Rcode  Rcode
}

func (h Header) flags() uint16 {
	var f uint16
	if h.QR {
		f |= flagQR
	}
	f |= uint16(h.Opcode&0xF) << 11
	if h.AA {
		f |= flagAA
	}
	if h.TC {
		f |= flagTC
	}
	if h.RD {
		f |= flagRD
	}
	if h.RA {
		f |= flagRA
	}
	if h.AD {
		f |= flagAD
	}
	if h.CD {
		f |= flagCD
	}
	f |= uint16(h.Rcode & 0xF)
	return f
}

func (h *Header) setFlags(f uint16) {
	h.QR = f&flagQR != 0
	h.Opcode = Opcode(f >> 11 & 0xF)
	h.AA = f&flagAA != 0
	h.TC = f&flagTC != 0
	h.RD = f&flagRD != 0
	h.RA = f&flagRA != 0
	h.AD = f&flagAD != 0
	h.CD = f&flagCD != 0
	h.Rcode = Rcode(f & 0xF)
}

// Question is a DNS question-section entry.
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// String returns the question in dig-like presentation form.
func (q Question) String() string {
	return fmt.Sprintf("%s %s %s", CanonicalName(q.Name), q.Class, q.Type)
}

// RR is a resource record: an owner name, TTL, class, and typed payload.
type RR struct {
	Name  string
	Class Class
	TTL   uint32
	Data  RData
}

// Type returns the record's RR type, derived from its payload.
func (r RR) Type() Type {
	if r.Data == nil {
		return TypeNone
	}
	return r.Data.Type()
}

// String returns the record in master-file presentation form.
func (r RR) String() string {
	return fmt.Sprintf("%s\t%d\t%s\t%s\t%s",
		CanonicalName(r.Name), r.TTL, r.Class, r.Type(), r.Data.String())
}

// Message is a complete DNS message. The zero value is an empty query.
type Message struct {
	Header     Header
	Question   []Question
	Answer     []RR
	Authority  []RR
	Additional []RR

	// Edns carries the OPT pseudo-record when present. It lives outside
	// Additional so replay code can manipulate EDNS independently; Pack
	// appends it to the additional section and Unpack extracts it.
	Edns *EDNS
}

// Reset clears m for reuse, retaining section slice capacity.
func (m *Message) Reset() {
	m.Header = Header{}
	m.Question = m.Question[:0]
	m.Answer = m.Answer[:0]
	m.Authority = m.Authority[:0]
	m.Additional = m.Additional[:0]
	m.Edns = nil
}

// Errors returned by message packing and unpacking.
var (
	ErrTruncatedMessage = errors.New("dnswire: truncated message")
	ErrMessageTooLarge  = errors.New("dnswire: message exceeds 65535 octets")
	errSectionCount     = errors.New("dnswire: section count overflows message")
	errNilRData         = errors.New("dnswire: record with nil rdata")
	errRDataTooLong     = errors.New("dnswire: rdata exceeds 65535 octets")
)

// compressorPool recycles compression state across Pack calls so the
// hot encode path performs no bookkeeping allocations.
var compressorPool = sync.Pool{
	New: func() any { return &compressor{entries: make([]compEntry, 0, maxCompressorEntries)} },
}

// Pack appends the wire encoding of m to buf and returns the extended
// slice. Name compression is applied to owner names and to the
// compressible rdata names. Pass buf = nil to allocate; packing into a
// presized buffer performs no intermediate allocations.
//
//ldlint:noalloc
func (m *Message) Pack(buf []byte) ([]byte, error) {
	msgStart := len(buf)
	cmp := compressorPool.Get().(*compressor)
	defer func() {
		cmp.reset()
		compressorPool.Put(cmp)
	}()

	buf = binary.BigEndian.AppendUint16(buf, m.Header.ID)
	buf = binary.BigEndian.AppendUint16(buf, m.Header.flags())
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Question)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Answer)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Authority)))
	arcount := len(m.Additional)
	if m.Edns != nil {
		arcount++
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(arcount))

	var err error
	for _, q := range m.Question {
		if buf, err = appendName(buf, q.Name, cmp, msgStart); err != nil {
			return buf, err
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Type))
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Class))
	}
	for _, section := range [...][]RR{m.Answer, m.Authority, m.Additional} {
		for _, rr := range section {
			if buf, err = appendRR(buf, rr, cmp, msgStart); err != nil {
				return buf, err
			}
		}
	}
	if m.Edns != nil {
		if buf, err = m.Edns.appendTo(buf); err != nil {
			return buf, err
		}
	}
	if len(buf)-msgStart > MaxMessageSize {
		return buf, ErrMessageTooLarge
	}
	return buf, nil
}

//ldlint:noalloc
func appendRR(buf []byte, rr RR, cmp compressionMap, msgStart int) ([]byte, error) {
	if rr.Data == nil {
		return buf, errNilRData
	}
	var err error
	if buf, err = appendName(buf, rr.Name, cmp, msgStart); err != nil {
		return buf, err
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(rr.Type()))
	buf = binary.BigEndian.AppendUint16(buf, uint16(rr.Class))
	buf = binary.BigEndian.AppendUint32(buf, rr.TTL)
	// Reserve rdlength, fill after encoding rdata.
	lenAt := len(buf)
	buf = append(buf, 0, 0)
	if buf, err = rr.Data.appendTo(buf, cmp, msgStart); err != nil {
		return buf, err
	}
	rdlen := len(buf) - lenAt - 2
	if rdlen > 0xFFFF {
		return buf, errRDataTooLong
	}
	binary.BigEndian.PutUint16(buf[lenAt:], uint16(rdlen))
	return buf, nil
}

// Unpack parses msg into m, replacing its contents. Sections are appended
// into m's existing slices where capacity allows.
func (m *Message) Unpack(msg []byte) error {
	m.Reset()
	if len(msg) < 12 {
		return ErrTruncatedMessage
	}
	if len(msg) > MaxMessageSize {
		return ErrMessageTooLarge
	}
	m.Header.ID = binary.BigEndian.Uint16(msg)
	m.Header.setFlags(binary.BigEndian.Uint16(msg[2:]))
	qd := int(binary.BigEndian.Uint16(msg[4:]))
	an := int(binary.BigEndian.Uint16(msg[6:]))
	ns := int(binary.BigEndian.Uint16(msg[8:]))
	ar := int(binary.BigEndian.Uint16(msg[10:]))
	// Each question needs ≥5 octets and each RR ≥11; reject counts that
	// cannot fit so forged headers cannot force large allocations.
	if 5*qd+11*(an+ns+ar) > len(msg)-12 {
		return errSectionCount
	}

	off := 12
	var err error
	for i := 0; i < qd; i++ {
		var q Question
		var name string
		if name, off, err = unpackName(msg, off); err != nil {
			return err
		}
		if off+4 > len(msg) {
			return ErrTruncatedMessage
		}
		q.Name = name
		q.Type = Type(binary.BigEndian.Uint16(msg[off:]))
		q.Class = Class(binary.BigEndian.Uint16(msg[off+2:]))
		off += 4
		m.Question = append(m.Question, q)
	}
	for s, count := range []int{an, ns, ar} {
		for i := 0; i < count; i++ {
			var rr RR
			var opt *EDNS
			if rr, opt, off, err = unpackRR(msg, off); err != nil {
				return err
			}
			if opt != nil {
				m.Edns = opt
				continue
			}
			switch s {
			case 0:
				m.Answer = append(m.Answer, rr)
			case 1:
				m.Authority = append(m.Authority, rr)
			default:
				m.Additional = append(m.Additional, rr)
			}
		}
	}
	return nil
}

// unpackRR decodes one resource record at msg[off:]. OPT records are
// returned as *EDNS with a zero RR.
func unpackRR(msg []byte, off int) (RR, *EDNS, int, error) {
	name, off, err := unpackName(msg, off)
	if err != nil {
		return RR{}, nil, 0, err
	}
	if off+10 > len(msg) {
		return RR{}, nil, 0, ErrTruncatedMessage
	}
	typ := Type(binary.BigEndian.Uint16(msg[off:]))
	class := Class(binary.BigEndian.Uint16(msg[off+2:]))
	ttl := binary.BigEndian.Uint32(msg[off+4:])
	rdlen := int(binary.BigEndian.Uint16(msg[off+8:]))
	off += 10
	if off+rdlen > len(msg) {
		return RR{}, nil, 0, ErrTruncatedMessage
	}
	if typ == TypeOPT {
		opt, err := unpackEDNS(name, class, ttl, msg[off:off+rdlen])
		return RR{}, opt, off + rdlen, err
	}
	data, err := unpackRData(typ, msg, off, rdlen)
	if err != nil {
		return RR{}, nil, 0, err
	}
	return RR{Name: name, Class: class, TTL: ttl, Data: data}, nil, off + rdlen, nil
}

// PackedLen returns the wire size of m, or an error if it cannot encode.
func (m *Message) PackedLen() (int, error) {
	buf, err := m.Pack(nil)
	if err != nil {
		return 0, err
	}
	return len(buf), nil
}

// String returns a dig-like multi-line rendering, useful in logs and the
// plain-text trace format's long form.
func (m *Message) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, ";; id %d opcode %s rcode %s flags", m.Header.ID, m.Header.Opcode, m.Header.Rcode)
	for _, f := range []struct {
		on   bool
		name string
	}{{m.Header.QR, "qr"}, {m.Header.AA, "aa"}, {m.Header.TC, "tc"}, {m.Header.RD, "rd"}, {m.Header.RA, "ra"}, {m.Header.AD, "ad"}, {m.Header.CD, "cd"}} {
		if f.on {
			sb.WriteByte(' ')
			sb.WriteString(f.name)
		}
	}
	sb.WriteByte('\n')
	for _, q := range m.Question {
		fmt.Fprintf(&sb, ";%s\n", q)
	}
	for name, sec := range map[string][]RR{"ANSWER": m.Answer, "AUTHORITY": m.Authority, "ADDITIONAL": m.Additional} {
		for _, rr := range sec {
			fmt.Fprintf(&sb, "%s %s\n", name, rr)
		}
	}
	if m.Edns != nil {
		fmt.Fprintf(&sb, ";; EDNS version 0, udp %d, do %v\n", m.Edns.UDPSize, m.Edns.DO)
	}
	return sb.String()
}

// NewQuery builds a standard recursive-desired query for (name, type).
func NewQuery(id uint16, name string, t Type) *Message {
	return &Message{
		Header:   Header{ID: id, RD: true},
		Question: []Question{{Name: CanonicalName(name), Type: t, Class: ClassINET}},
	}
}

// ResponseTo initializes m as a response skeleton mirroring query q: same
// ID, question, opcode, and RD flag, with QR set.
func ResponseTo(q *Message) *Message {
	resp := &Message{}
	resp.SetResponseTo(q)
	return resp
}

// SetResponseTo resets m and initializes it as a response skeleton
// mirroring query q, reusing m's section capacity. It is the
// allocation-free variant of ResponseTo for pooled messages.
func (m *Message) SetResponseTo(q *Message) {
	m.Reset()
	m.Header = Header{
		ID:     q.Header.ID,
		QR:     true,
		Opcode: q.Header.Opcode,
		RD:     q.Header.RD,
	}
	m.Question = append(m.Question, q.Question...)
}
