package dnswire

import "testing"

// TestPackPresizedAllocs pins Pack at zero allocations when appending
// into a buffer with sufficient capacity: compression state is pooled
// and suffix keys are substrings of the names being packed, so the
// encode path must not produce garbage.
func TestPackPresizedAllocs(t *testing.T) {
	m := benchResponse()
	buf := make([]byte, 0, 512)
	allocs := testing.AllocsPerRun(1000, func() {
		var err error
		buf, err = m.Pack(buf[:0])
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("Pack into presized buffer allocs/op = %.2f, want 0", allocs)
	}
}

// TestUnpackReuseAllocs pins steady-state Unpack into a pooled Message:
// section slices are reused, so per-message allocations are limited to
// the decoded names and rdata values themselves.
func TestUnpackReuseAllocs(t *testing.T) {
	wire, err := benchResponse().Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	m := GetMessage()
	defer PutMessage(m)
	base := testing.AllocsPerRun(1000, func() {
		if err := m.Unpack(wire); err != nil {
			t.Fatal(err)
		}
	})
	// 6 RRs + OPT + names: the exact number is an implementation detail,
	// but reuse must keep it well under one-allocation-per-byte churn.
	// The guard catches section-slice or header-level regressions.
	if base > 25 {
		t.Errorf("Unpack reuse allocs/op = %.2f, want ≤ 25", base)
	}
}
