package dnswire

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"strconv"
	"strings"
)

// RData is the type-specific payload of a resource record. Implementations
// are immutable values; records sharing an RData may be copied freely.
type RData interface {
	// Type returns the RR type this payload belongs to.
	Type() Type
	// String returns the presentation (master-file) form of the payload.
	String() string
	// appendTo appends the wire form. Compressible names inside the rdata
	// (NS, CNAME, PTR, MX, SOA per RFC 1035 §4.1.4) use cmp when non-nil.
	appendTo(buf []byte, cmp compressionMap, msgStart int) ([]byte, error)
}

var errTruncatedRData = errors.New("dnswire: truncated rdata")

// A is an IPv4 address record payload.
type A struct{ Addr netip.Addr }

// Type implements RData.
func (A) Type() Type { return TypeA }

// String implements RData.
func (a A) String() string { return a.Addr.String() }

func (a A) appendTo(buf []byte, _ compressionMap, _ int) ([]byte, error) {
	if !a.Addr.Is4() {
		return buf, fmt.Errorf("dnswire: A record with non-IPv4 address %v", a.Addr)
	}
	b := a.Addr.As4()
	return append(buf, b[:]...), nil
}

// AAAA is an IPv6 address record payload.
type AAAA struct{ Addr netip.Addr }

// Type implements RData.
func (AAAA) Type() Type { return TypeAAAA }

// String implements RData.
func (a AAAA) String() string { return a.Addr.String() }

func (a AAAA) appendTo(buf []byte, _ compressionMap, _ int) ([]byte, error) {
	if !a.Addr.Is6() || a.Addr.Is4In6() {
		return buf, fmt.Errorf("dnswire: AAAA record with non-IPv6 address %v", a.Addr)
	}
	b := a.Addr.As16()
	return append(buf, b[:]...), nil
}

// NS is a delegation nameserver payload.
type NS struct{ Host string }

// Type implements RData.
func (NS) Type() Type { return TypeNS }

// String implements RData.
func (n NS) String() string { return CanonicalName(n.Host) }

func (n NS) appendTo(buf []byte, cmp compressionMap, msgStart int) ([]byte, error) {
	return appendName(buf, n.Host, cmp, msgStart)
}

// CNAME is a canonical-name alias payload.
type CNAME struct{ Target string }

// Type implements RData.
func (CNAME) Type() Type { return TypeCNAME }

// String implements RData.
func (c CNAME) String() string { return CanonicalName(c.Target) }

func (c CNAME) appendTo(buf []byte, cmp compressionMap, msgStart int) ([]byte, error) {
	return appendName(buf, c.Target, cmp, msgStart)
}

// PTR is a pointer payload (reverse DNS).
type PTR struct{ Target string }

// Type implements RData.
func (PTR) Type() Type { return TypePTR }

// String implements RData.
func (p PTR) String() string { return CanonicalName(p.Target) }

func (p PTR) appendTo(buf []byte, cmp compressionMap, msgStart int) ([]byte, error) {
	return appendName(buf, p.Target, cmp, msgStart)
}

// MX is a mail-exchanger payload.
type MX struct {
	Preference uint16
	Host       string
}

// Type implements RData.
func (MX) Type() Type { return TypeMX }

// String implements RData.
func (m MX) String() string {
	return fmt.Sprintf("%d %s", m.Preference, CanonicalName(m.Host))
}

func (m MX) appendTo(buf []byte, cmp compressionMap, msgStart int) ([]byte, error) {
	buf = binary.BigEndian.AppendUint16(buf, m.Preference)
	return appendName(buf, m.Host, cmp, msgStart)
}

// TXT is a text payload of one or more character-strings.
type TXT struct{ Strings []string }

// Type implements RData.
func (TXT) Type() Type { return TypeTXT }

// String implements RData.
func (t TXT) String() string {
	parts := make([]string, len(t.Strings))
	for i, s := range t.Strings {
		parts[i] = strconv.Quote(s)
	}
	return strings.Join(parts, " ")
}

func (t TXT) appendTo(buf []byte, _ compressionMap, _ int) ([]byte, error) {
	if len(t.Strings) == 0 {
		return append(buf, 0), nil
	}
	for _, s := range t.Strings {
		if len(s) > 255 {
			return buf, errors.New("dnswire: TXT character-string exceeds 255 octets")
		}
		buf = append(buf, byte(len(s)))
		buf = append(buf, s...)
	}
	return buf, nil
}

// SOA is a start-of-authority payload.
type SOA struct {
	MName   string
	RName   string
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32
}

// Type implements RData.
func (SOA) Type() Type { return TypeSOA }

// String implements RData.
func (s SOA) String() string {
	return fmt.Sprintf("%s %s %d %d %d %d %d",
		CanonicalName(s.MName), CanonicalName(s.RName),
		s.Serial, s.Refresh, s.Retry, s.Expire, s.Minimum)
}

func (s SOA) appendTo(buf []byte, cmp compressionMap, msgStart int) ([]byte, error) {
	var err error
	if buf, err = appendName(buf, s.MName, cmp, msgStart); err != nil {
		return buf, err
	}
	if buf, err = appendName(buf, s.RName, cmp, msgStart); err != nil {
		return buf, err
	}
	buf = binary.BigEndian.AppendUint32(buf, s.Serial)
	buf = binary.BigEndian.AppendUint32(buf, s.Refresh)
	buf = binary.BigEndian.AppendUint32(buf, s.Retry)
	buf = binary.BigEndian.AppendUint32(buf, s.Expire)
	buf = binary.BigEndian.AppendUint32(buf, s.Minimum)
	return buf, nil
}

// SRV is a service-location payload (RFC 2782). Its target name is never
// compressed.
type SRV struct {
	Priority uint16
	Weight   uint16
	Port     uint16
	Target   string
}

// Type implements RData.
func (SRV) Type() Type { return TypeSRV }

// String implements RData.
func (s SRV) String() string {
	return fmt.Sprintf("%d %d %d %s", s.Priority, s.Weight, s.Port, CanonicalName(s.Target))
}

func (s SRV) appendTo(buf []byte, _ compressionMap, _ int) ([]byte, error) {
	buf = binary.BigEndian.AppendUint16(buf, s.Priority)
	buf = binary.BigEndian.AppendUint16(buf, s.Weight)
	buf = binary.BigEndian.AppendUint16(buf, s.Port)
	return appendName(buf, s.Target, nil, 0)
}

// DS is a delegation-signer payload (RFC 4034 §5).
type DS struct {
	KeyTag     uint16
	Algorithm  uint8
	DigestType uint8
	Digest     []byte
}

// Type implements RData.
func (DS) Type() Type { return TypeDS }

// String implements RData.
func (d DS) String() string {
	return fmt.Sprintf("%d %d %d %s", d.KeyTag, d.Algorithm, d.DigestType,
		strings.ToUpper(hex.EncodeToString(d.Digest)))
}

func (d DS) appendTo(buf []byte, _ compressionMap, _ int) ([]byte, error) {
	buf = binary.BigEndian.AppendUint16(buf, d.KeyTag)
	buf = append(buf, d.Algorithm, d.DigestType)
	return append(buf, d.Digest...), nil
}

// DNSKEY is a DNSSEC public-key payload (RFC 4034 §2).
type DNSKEY struct {
	Flags     uint16 // 256 = ZSK, 257 = KSK
	Protocol  uint8  // always 3
	Algorithm uint8
	PublicKey []byte
}

// Type implements RData.
func (DNSKEY) Type() Type { return TypeDNSKEY }

// String implements RData.
func (k DNSKEY) String() string {
	return fmt.Sprintf("%d %d %d %s", k.Flags, k.Protocol, k.Algorithm,
		base64.StdEncoding.EncodeToString(k.PublicKey))
}

func (k DNSKEY) appendTo(buf []byte, _ compressionMap, _ int) ([]byte, error) {
	buf = binary.BigEndian.AppendUint16(buf, k.Flags)
	buf = append(buf, k.Protocol, k.Algorithm)
	return append(buf, k.PublicKey...), nil
}

// RRSIG is a DNSSEC signature payload (RFC 4034 §3). The signer name is
// never compressed.
type RRSIG struct {
	TypeCovered Type
	Algorithm   uint8
	Labels      uint8
	OrigTTL     uint32
	Expiration  uint32
	Inception   uint32
	KeyTag      uint16
	SignerName  string
	Signature   []byte
}

// Type implements RData.
func (RRSIG) Type() Type { return TypeRRSIG }

// String implements RData.
func (r RRSIG) String() string {
	return fmt.Sprintf("%s %d %d %d %d %d %d %s %s",
		r.TypeCovered, r.Algorithm, r.Labels, r.OrigTTL,
		r.Expiration, r.Inception, r.KeyTag, CanonicalName(r.SignerName),
		base64.StdEncoding.EncodeToString(r.Signature))
}

func (r RRSIG) appendTo(buf []byte, _ compressionMap, _ int) ([]byte, error) {
	buf = binary.BigEndian.AppendUint16(buf, uint16(r.TypeCovered))
	buf = append(buf, r.Algorithm, r.Labels)
	buf = binary.BigEndian.AppendUint32(buf, r.OrigTTL)
	buf = binary.BigEndian.AppendUint32(buf, r.Expiration)
	buf = binary.BigEndian.AppendUint32(buf, r.Inception)
	buf = binary.BigEndian.AppendUint16(buf, r.KeyTag)
	var err error
	if buf, err = appendName(buf, r.SignerName, nil, 0); err != nil {
		return buf, err
	}
	return append(buf, r.Signature...), nil
}

// NSEC is an authenticated-denial payload (RFC 4034 §4).
type NSEC struct {
	NextName string
	Types    []Type
}

// Type implements RData.
func (NSEC) Type() Type { return TypeNSEC }

// String implements RData.
func (n NSEC) String() string {
	parts := []string{CanonicalName(n.NextName)}
	for _, t := range n.Types {
		parts = append(parts, t.String())
	}
	return strings.Join(parts, " ")
}

func (n NSEC) appendTo(buf []byte, _ compressionMap, _ int) ([]byte, error) {
	var err error
	if buf, err = appendName(buf, n.NextName, nil, 0); err != nil {
		return buf, err
	}
	return appendTypeBitmap(buf, n.Types), nil
}

// appendTypeBitmap encodes the NSEC window-block type bitmap.
func appendTypeBitmap(buf []byte, types []Type) []byte {
	if len(types) == 0 {
		return buf
	}
	sorted := make([]Type, len(types))
	copy(sorted, types)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	// Group by 256-type window.
	i := 0
	for i < len(sorted) {
		window := byte(sorted[i] >> 8)
		var bitmap [32]byte
		maxOctet := 0
		for i < len(sorted) && byte(sorted[i]>>8) == window {
			lo := byte(sorted[i])
			bitmap[lo/8] |= 0x80 >> (lo % 8)
			if int(lo/8)+1 > maxOctet {
				maxOctet = int(lo/8) + 1
			}
			i++
		}
		buf = append(buf, window, byte(maxOctet))
		buf = append(buf, bitmap[:maxOctet]...)
	}
	return buf
}

// parseTypeBitmap decodes an NSEC window-block type bitmap.
func parseTypeBitmap(data []byte) ([]Type, error) {
	var types []Type
	for len(data) > 0 {
		if len(data) < 2 {
			return nil, errTruncatedRData
		}
		window, octets := data[0], int(data[1])
		data = data[2:]
		if octets < 1 || octets > 32 || len(data) < octets {
			return nil, errors.New("dnswire: malformed NSEC bitmap")
		}
		for i := 0; i < octets; i++ {
			for bit := 0; bit < 8; bit++ {
				if data[i]&(0x80>>bit) != 0 {
					types = append(types, Type(uint16(window)<<8|uint16(i*8+bit)))
				}
			}
		}
		data = data[octets:]
	}
	return types, nil
}

// RawRData carries the opaque payload of an RR type LDplayer does not model
// natively (RFC 3597 treatment).
type RawRData struct {
	RRType Type
	Data   []byte
}

// Type implements RData.
func (r RawRData) Type() Type { return r.RRType }

// String implements RData (RFC 3597 \# form).
func (r RawRData) String() string {
	return fmt.Sprintf("\\# %d %s", len(r.Data), hex.EncodeToString(r.Data))
}

func (r RawRData) appendTo(buf []byte, _ compressionMap, _ int) ([]byte, error) {
	return append(buf, r.Data...), nil
}

// unpackRData decodes rdlen octets at msg[off:] as type t. Names inside the
// rdata may be compressed and may point anywhere earlier in msg.
func unpackRData(t Type, msg []byte, off, rdlen int) (RData, error) {
	if off+rdlen > len(msg) {
		return nil, errTruncatedRData
	}
	end := off + rdlen
	switch t {
	case TypeA:
		if rdlen != 4 {
			return nil, fmt.Errorf("dnswire: A rdata length %d", rdlen)
		}
		return A{Addr: netip.AddrFrom4([4]byte(msg[off:end]))}, nil
	case TypeAAAA:
		if rdlen != 16 {
			return nil, fmt.Errorf("dnswire: AAAA rdata length %d", rdlen)
		}
		return AAAA{Addr: netip.AddrFrom16([16]byte(msg[off:end]))}, nil
	case TypeNS:
		name, _, err := unpackName(msg, off)
		return NS{Host: name}, err
	case TypeCNAME:
		name, _, err := unpackName(msg, off)
		return CNAME{Target: name}, err
	case TypePTR:
		name, _, err := unpackName(msg, off)
		return PTR{Target: name}, err
	case TypeMX:
		if rdlen < 3 {
			return nil, errTruncatedRData
		}
		pref := binary.BigEndian.Uint16(msg[off:])
		name, _, err := unpackName(msg, off+2)
		return MX{Preference: pref, Host: name}, err
	case TypeTXT:
		var ss []string
		p := off
		for p < end {
			n := int(msg[p])
			p++
			if p+n > end {
				return nil, errTruncatedRData
			}
			ss = append(ss, string(msg[p:p+n]))
			p += n
		}
		return TXT{Strings: ss}, nil
	case TypeSOA:
		mname, p, err := unpackName(msg, off)
		if err != nil {
			return nil, err
		}
		rname, p, err := unpackName(msg, p)
		if err != nil {
			return nil, err
		}
		if p+20 > end {
			return nil, errTruncatedRData
		}
		return SOA{
			MName:   mname,
			RName:   rname,
			Serial:  binary.BigEndian.Uint32(msg[p:]),
			Refresh: binary.BigEndian.Uint32(msg[p+4:]),
			Retry:   binary.BigEndian.Uint32(msg[p+8:]),
			Expire:  binary.BigEndian.Uint32(msg[p+12:]),
			Minimum: binary.BigEndian.Uint32(msg[p+16:]),
		}, nil
	case TypeSRV:
		if rdlen < 7 {
			return nil, errTruncatedRData
		}
		name, _, err := unpackName(msg, off+6)
		return SRV{
			Priority: binary.BigEndian.Uint16(msg[off:]),
			Weight:   binary.BigEndian.Uint16(msg[off+2:]),
			Port:     binary.BigEndian.Uint16(msg[off+4:]),
			Target:   name,
		}, err
	case TypeDS:
		if rdlen < 4 {
			return nil, errTruncatedRData
		}
		return DS{
			KeyTag:     binary.BigEndian.Uint16(msg[off:]),
			Algorithm:  msg[off+2],
			DigestType: msg[off+3],
			Digest:     append([]byte(nil), msg[off+4:end]...),
		}, nil
	case TypeDNSKEY:
		if rdlen < 4 {
			return nil, errTruncatedRData
		}
		return DNSKEY{
			Flags:     binary.BigEndian.Uint16(msg[off:]),
			Protocol:  msg[off+2],
			Algorithm: msg[off+3],
			PublicKey: append([]byte(nil), msg[off+4:end]...),
		}, nil
	case TypeRRSIG:
		if rdlen < 18 {
			return nil, errTruncatedRData
		}
		name, p, err := unpackName(msg, off+18)
		if err != nil {
			return nil, err
		}
		if p > end {
			return nil, errTruncatedRData
		}
		return RRSIG{
			TypeCovered: Type(binary.BigEndian.Uint16(msg[off:])),
			Algorithm:   msg[off+2],
			Labels:      msg[off+3],
			OrigTTL:     binary.BigEndian.Uint32(msg[off+4:]),
			Expiration:  binary.BigEndian.Uint32(msg[off+8:]),
			Inception:   binary.BigEndian.Uint32(msg[off+12:]),
			KeyTag:      binary.BigEndian.Uint16(msg[off+16:]),
			SignerName:  name,
			Signature:   append([]byte(nil), msg[p:end]...),
		}, nil
	case TypeNSEC3:
		return unpackNSEC3(msg, off, rdlen)
	case TypeNSEC3PARAM:
		return unpackNSEC3PARAM(msg, off, rdlen)
	case TypeNSEC:
		name, p, err := unpackName(msg, off)
		if err != nil {
			return nil, err
		}
		if p > end {
			return nil, errTruncatedRData
		}
		types, err := parseTypeBitmap(msg[p:end])
		if err != nil {
			return nil, err
		}
		return NSEC{NextName: name, Types: types}, nil
	default:
		return RawRData{RRType: t, Data: append([]byte(nil), msg[off:end]...)}, nil
	}
}
