package mutate

import (
	"math/rand"
	"net/netip"
	"strings"
	"testing"
	"time"

	"ldplayer/internal/dnswire"
	"ldplayer/internal/trace"
)

func entries(t *testing.T, n int) []trace.Entry {
	t.Helper()
	base := time.Unix(1700000000, 0)
	out := make([]trace.Entry, n)
	for i := range out {
		m := dnswire.NewQuery(uint16(i+1), "example.com.", dnswire.TypeA)
		wire, err := m.Pack(nil)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = trace.Entry{
			Time:     base.Add(time.Duration(i) * 100 * time.Millisecond),
			Src:      netip.MustParseAddrPort("10.0.0.1:5353"),
			Dst:      netip.MustParseAddrPort("198.41.0.4:53"),
			Protocol: trace.UDP,
			Message:  wire,
		}
	}
	return out
}

func runPipeline(t *testing.T, p *Pipeline, in []trace.Entry) []trace.Entry {
	t.Helper()
	out, err := trace.ReadAll(p.Reader(trace.NewSliceReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func decode(t *testing.T, e trace.Entry) *dnswire.Message {
	t.Helper()
	var m dnswire.Message
	if err := e.Decode(&m); err != nil {
		t.Fatal(err)
	}
	return &m
}

func TestSetProtocol(t *testing.T) {
	out := runPipeline(t, NewPipeline(SetProtocol(trace.TLS)), entries(t, 5))
	for _, e := range out {
		if e.Protocol != trace.TLS {
			t.Fatalf("protocol = %v", e.Protocol)
		}
	}
}

func TestSetProtocolFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := entries(t, 2000)
	out := runPipeline(t, NewPipeline(SetProtocolFraction(trace.TCP, 0.03, rng)), in)
	tcp := 0
	for _, e := range out {
		if e.Protocol == trace.TCP {
			tcp++
		}
	}
	frac := float64(tcp) / float64(len(out))
	if frac < 0.015 || frac > 0.05 {
		t.Errorf("TCP fraction = %.3f, want ~0.03", frac)
	}
}

func TestSetDOAddsEDNS(t *testing.T) {
	out := runPipeline(t, NewPipeline(SetDO(true)), entries(t, 3))
	for _, e := range out {
		m := decode(t, e)
		if m.Edns == nil || !m.Edns.DO {
			t.Fatalf("EDNS = %+v", m.Edns)
		}
		if m.Edns.UDPSize != dnswire.DefaultEDNSSize {
			t.Errorf("UDP size = %d", m.Edns.UDPSize)
		}
	}
}

func TestSetDOFractionExactMix(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	out := runPipeline(t, NewPipeline(SetDOFraction(0.723, rng)), entries(t, 3000))
	do := 0
	for _, e := range out {
		if m := decode(t, e); m.Edns != nil && m.Edns.DO {
			do++
		}
	}
	frac := float64(do) / float64(len(out))
	if frac < 0.69 || frac > 0.76 {
		t.Errorf("DO fraction = %.3f, want ~0.723", frac)
	}
}

func TestPrependUniqueDistinctAndMatchable(t *testing.T) {
	out := runPipeline(t, NewPipeline(PrependUnique("r")), entries(t, 10))
	seen := map[string]bool{}
	for _, e := range out {
		m := decode(t, e)
		name := m.Question[0].Name
		if seen[name] {
			t.Fatalf("duplicate tagged name %q", name)
		}
		seen[name] = true
		if !strings.HasSuffix(name, ".example.com.") {
			t.Errorf("tag destroyed suffix: %q", name)
		}
	}
}

func TestRewriteQueryNameAndDst(t *testing.T) {
	dst := netip.MustParseAddrPort("127.0.0.1:5300")
	out := runPipeline(t, NewPipeline(
		RewriteQueryName("www.example.com."),
		RewriteDst(dst),
	), entries(t, 3))
	for _, e := range out {
		if e.Dst != dst {
			t.Errorf("dst = %v", e.Dst)
		}
		if m := decode(t, e); m.Question[0].Name != "www.example.com." {
			t.Errorf("name = %q", m.Question[0].Name)
		}
	}
}

func TestTimeScale(t *testing.T) {
	in := entries(t, 5) // spaced 100ms apart
	out := runPipeline(t, NewPipeline(TimeScale(0.5)), in)
	for i := 1; i < len(out); i++ {
		gap := out[i].Time.Sub(out[i-1].Time)
		if gap != 50*time.Millisecond {
			t.Errorf("gap %d = %v, want 50ms", i, gap)
		}
	}
}

func TestTimeShift(t *testing.T) {
	in := entries(t, 2)
	out := runPipeline(t, NewPipeline(TimeShift(time.Hour)), in)
	if !out[0].Time.Equal(in[0].Time.Add(time.Hour)) {
		t.Errorf("shifted time = %v", out[0].Time)
	}
}

func TestQueriesOnlyDropsResponses(t *testing.T) {
	in := entries(t, 4)
	// Turn entry 1 and 3 into responses by setting QR in the raw header.
	for _, i := range []int{1, 3} {
		in[i].Message = append([]byte(nil), in[i].Message...)
		in[i].Message[2] |= 0x80
	}
	out := runPipeline(t, NewPipeline(QueriesOnly()), in)
	if len(out) != 2 {
		t.Fatalf("kept %d entries, want 2", len(out))
	}
}

func TestLimitAndSample(t *testing.T) {
	out := runPipeline(t, NewPipeline(Limit(3)), entries(t, 10))
	if len(out) != 3 {
		t.Errorf("Limit kept %d", len(out))
	}
	rng := rand.New(rand.NewSource(5))
	out = runPipeline(t, NewPipeline(SampleFraction(0.5, rng)), entries(t, 1000))
	if len(out) < 400 || len(out) > 600 {
		t.Errorf("Sample kept %d of 1000", len(out))
	}
}

func TestPipelineDoesNotMutateInput(t *testing.T) {
	in := entries(t, 1)
	orig := append([]byte(nil), in[0].Message...)
	runPipeline(t, NewPipeline(SetDO(true)), in)
	if string(in[0].Message) != string(orig) {
		t.Error("pipeline mutated the input buffer")
	}
}

func TestComposedWhatIfPipeline(t *testing.T) {
	// The full §5.2 preparation: queries only, all TCP, tagged, retargeted.
	rng := rand.New(rand.NewSource(1))
	_ = rng
	dst := netip.MustParseAddrPort("127.0.0.1:5300")
	p := NewPipeline(
		QueriesOnly(),
		SetProtocol(trace.TCP),
		SetDO(true),
		PrependUnique("x"),
		RewriteDst(dst),
	)
	out := runPipeline(t, p, entries(t, 20))
	if len(out) != 20 {
		t.Fatalf("entries = %d", len(out))
	}
	for _, e := range out {
		if e.Protocol != trace.TCP || e.Dst != dst {
			t.Errorf("entry = %+v", e)
		}
		m := decode(t, e)
		if m.Edns == nil || !m.Edns.DO || !strings.HasPrefix(m.Question[0].Name, "x") {
			t.Errorf("message = %+v", m)
		}
	}
}

func TestPrependUniqueRootApexQuery(t *testing.T) {
	m := dnswire.NewQuery(1, ".", dnswire.TypeNS)
	wire, err := m.Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	in := []trace.Entry{{
		Time:    time.Unix(0, 0),
		Src:     netip.MustParseAddrPort("10.0.0.1:1"),
		Dst:     netip.MustParseAddrPort("198.41.0.4:53"),
		Message: wire,
	}}
	out := runPipeline(t, NewPipeline(PrependUnique("r")), in)
	if len(out) != 1 {
		t.Fatalf("entries = %d", len(out))
	}
	got := decode(t, out[0])
	if got.Question[0].Name != "r1." {
		t.Errorf("tagged root query = %q, want r1.", got.Question[0].Name)
	}
}
