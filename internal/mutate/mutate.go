// Package mutate implements the query mutator of §2.5: arbitrary,
// streaming manipulation of trace entries so one captured trace can drive
// many "what-if" experiments — all queries over TCP or TLS (§5.2), all
// queries with the DO bit set (§5.1), unique-name tagging for replay
// validation (§4.2), time scaling, and filtering. Mutations compose into a
// Pipeline that wraps any trace.Reader, so they can run ahead of time
// (text → binary pre-processing) or live with the replay.
package mutate

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"ldplayer/internal/dnswire"
	"ldplayer/internal/trace"
)

// ErrDrop signals that a mutation filtered the entry out of the stream.
var ErrDrop = fmt.Errorf("mutate: entry dropped")

// Mutation transforms one entry in place. Returning ErrDrop removes the
// entry; any other error aborts the stream.
type Mutation func(*trace.Entry) error

// Pipeline composes mutations in order.
type Pipeline struct {
	mutations []Mutation
}

// NewPipeline builds a pipeline from mutations applied in order.
func NewPipeline(mutations ...Mutation) *Pipeline {
	return &Pipeline{mutations: mutations}
}

// Append adds further mutations.
func (p *Pipeline) Append(m ...Mutation) { p.mutations = append(p.mutations, m...) }

// Apply runs the pipeline on one entry.
func (p *Pipeline) Apply(e *trace.Entry) error {
	for _, m := range p.mutations {
		if err := m(e); err != nil {
			return err
		}
	}
	return nil
}

// Reader wraps r so entries stream through the pipeline, dropping
// filtered entries transparently.
func (p *Pipeline) Reader(r trace.Reader) trace.Reader {
	return &pipelineReader{p: p, r: r}
}

type pipelineReader struct {
	p *Pipeline
	r trace.Reader
}

func (pr *pipelineReader) Next() (trace.Entry, error) {
	for {
		e, err := pr.r.Next()
		if err != nil {
			return trace.Entry{}, err
		}
		e = e.Clone() // mutations must not corrupt shared buffers
		if err := pr.p.Apply(&e); err != nil {
			if err == ErrDrop {
				continue
			}
			return trace.Entry{}, err
		}
		return e, nil
	}
}

// EditMessage returns a mutation that unpacks the DNS message, applies
// edit, and repacks. It is the escape hatch for arbitrary edits.
func EditMessage(edit func(*dnswire.Message) error) Mutation {
	return func(e *trace.Entry) error {
		var m dnswire.Message
		if err := m.Unpack(e.Message); err != nil {
			return fmt.Errorf("mutate: %w", err)
		}
		if err := edit(&m); err != nil {
			return err
		}
		wire, err := m.Pack(nil)
		if err != nil {
			return err
		}
		e.Message = wire
		return nil
	}
}

// SetProtocol forces every entry onto proto — the paper's headline
// "what if all DNS ran over TCP/TLS" mutation.
func SetProtocol(proto trace.Protocol) Mutation {
	return func(e *trace.Entry) error {
		e.Protocol = proto
		return nil
	}
}

// SetProtocolFraction moves a random fraction of entries onto proto,
// leaving the rest untouched (e.g. reproduce the original 3% TCP mix).
func SetProtocolFraction(proto trace.Protocol, fraction float64, rng *rand.Rand) Mutation {
	return func(e *trace.Entry) error {
		if rng.Float64() < fraction {
			e.Protocol = proto
		}
		return nil
	}
}

// SetDO forces the EDNS DO bit on every query, adding an OPT record when
// missing (§5.1's 72.3% → 100% DNSSEC experiment).
func SetDO(on bool) Mutation {
	return EditMessage(func(m *dnswire.Message) error {
		if m.Edns == nil {
			if !on {
				return nil
			}
			m.Edns = &dnswire.EDNS{UDPSize: dnswire.DefaultEDNSSize}
		}
		m.Edns.DO = on
		return nil
	})
}

// SetDOFraction sets the DO bit on a random fraction of queries and
// clears it on the rest, producing an exact traffic mix.
func SetDOFraction(fraction float64, rng *rand.Rand) Mutation {
	return func(e *trace.Entry) error {
		on := rng.Float64() < fraction
		return SetDO(on)(e)
	}
}

// ForceEDNS sets the advertised UDP buffer size, adding OPT when missing.
func ForceEDNS(size uint16) Mutation {
	return EditMessage(func(m *dnswire.Message) error {
		if m.Edns == nil {
			m.Edns = &dnswire.EDNS{}
		}
		m.Edns.UDPSize = size
		return nil
	})
}

// PrependUnique tags every query name with a distinct prefix label
// ("q<serial>.<prefix>."), the §4.2 trick that lets the evaluator match
// each replayed query to its capture afterwards.
func PrependUnique(prefix string) Mutation {
	serial := 0
	return EditMessage(func(m *dnswire.Message) error {
		if len(m.Question) != 1 {
			return fmt.Errorf("mutate: cannot tag message with %d questions", len(m.Question))
		}
		serial++
		label := fmt.Sprintf("%s%d", prefix, serial)
		if len(label) > 63 {
			return fmt.Errorf("mutate: unique label %q too long", label)
		}
		base := dnswire.CanonicalName(m.Question[0].Name)
		name := label + "." + base
		if base == "." {
			name = label + "." // tagging a root-apex query
		}
		name = dnswire.CanonicalName(name)
		if !dnswire.ValidName(name) {
			return fmt.Errorf("mutate: tagged name %q invalid", name)
		}
		m.Question[0].Name = name
		return nil
	})
}

// RewriteQueryName replaces every query name, e.g. to point all load at a
// wildcard zone for throughput tests.
func RewriteQueryName(name string) Mutation {
	name = dnswire.CanonicalName(name)
	return EditMessage(func(m *dnswire.Message) error {
		for i := range m.Question {
			m.Question[i].Name = name
		}
		return nil
	})
}

// RewriteDst points every entry at the testbed server address.
func RewriteDst(dst netip.AddrPort) Mutation {
	return func(e *trace.Entry) error {
		e.Dst = dst
		return nil
	}
}

// TimeScale multiplies every entry's offset from the first entry by
// factor (<1 speeds the trace up, >1 slows it down).
func TimeScale(factor float64) Mutation {
	var base time.Time
	return func(e *trace.Entry) error {
		if base.IsZero() {
			base = e.Time
			return nil
		}
		offset := e.Time.Sub(base)
		e.Time = base.Add(time.Duration(float64(offset) * factor))
		return nil
	}
}

// TimeShift displaces every timestamp by delta.
func TimeShift(delta time.Duration) Mutation {
	return func(e *trace.Entry) error {
		e.Time = e.Time.Add(delta)
		return nil
	}
}

// QueriesOnly drops responses (QR=1), keeping the query stream a replay
// needs.
func QueriesOnly() Mutation {
	return func(e *trace.Entry) error {
		if len(e.Message) < 3 {
			return ErrDrop
		}
		if e.Message[2]&0x80 != 0 {
			return ErrDrop
		}
		return nil
	}
}

// SampleFraction keeps each entry with probability fraction.
func SampleFraction(fraction float64, rng *rand.Rand) Mutation {
	return func(e *trace.Entry) error {
		if rng.Float64() >= fraction {
			return ErrDrop
		}
		return nil
	}
}

// Limit truncates the stream after n entries.
func Limit(n int) Mutation {
	seen := 0
	return func(e *trace.Entry) error {
		seen++
		if seen > n {
			return ErrDrop
		}
		return nil
	}
}
