package hierarchy

import (
	"context"
	"math/rand"
	"net/netip"
	"testing"

	"ldplayer/internal/authserver"
	"ldplayer/internal/dnssec"
	"ldplayer/internal/dnswire"
	"ldplayer/internal/resolver"
	"ldplayer/internal/zone"
)

func TestBuildBasicStructure(t *testing.T) {
	h, err := Build([]string{"example.com.", "foo.org.", "bar.com."}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.TLDs) != 2 {
		t.Errorf("TLDs = %d", len(h.TLDs))
	}
	if len(h.SLDs) != 3 {
		t.Errorf("SLDs = %d", len(h.SLDs))
	}
	if errs := h.Validate(); len(errs) != 0 {
		t.Errorf("validation: %v", errs)
	}
	if n := len(h.NSAddrs["."]); n != 26 { // 13 dual-stack root servers
		t.Errorf("root server addresses = %d, want 26", n)
	}
	// Root delegates com with glue.
	res := h.Root.Lookup("www.example.com.", dnswire.TypeA, zone.LookupOptions{})
	if res.Kind != zone.Referral || len(res.Additional) == 0 {
		t.Errorf("root lookup: %v %v", res.Kind, res.Additional)
	}
	// com delegates example.com.
	res = h.TLDs["com."].Lookup("www.example.com.", dnswire.TypeA, zone.LookupOptions{})
	if res.Kind != zone.Referral {
		t.Errorf("com lookup kind = %v", res.Kind)
	}
	// The SLD answers.
	res = h.SLDs["example.com."].Lookup("www.example.com.", dnswire.TypeA, zone.LookupOptions{})
	if res.Kind != zone.Answer {
		t.Errorf("sld lookup kind = %v", res.Kind)
	}
	// Wildcard content exists.
	res = h.SLDs["example.com."].Lookup("anything.example.com.", dnswire.TypeA, zone.LookupOptions{})
	if res.Kind != zone.Answer {
		t.Errorf("wildcard lookup kind = %v", res.Kind)
	}
}

func TestNSAddrsDisjoint(t *testing.T) {
	h, err := Build([]string{"a.com.", "b.com.", "c.net."}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{}
	for origin, addrs := range h.NSAddrs {
		for _, a := range addrs {
			if prev, dup := seen[a.String()]; dup {
				t.Errorf("address %v shared by %s and %s", a, prev, origin)
			}
			seen[a.String()] = origin
		}
	}
}

func TestSignedHierarchy(t *testing.T) {
	h, err := Build([]string{"example.com."}, Options{
		Signed: true,
		DNSSEC: dnssec.Config{ZSKBits: 2048},
	})
	if err != nil {
		t.Fatal(err)
	}
	for origin, z := range h.Zones() {
		if len(z.RRset(origin, dnswire.TypeDNSKEY)) < 2 {
			t.Errorf("%s: missing DNSKEYs", origin)
		}
	}
	// Parents publish DS for children.
	if len(h.Root.RRset("com.", dnswire.TypeDS)) != 1 {
		t.Error("root lacks DS for com.")
	}
	if len(h.TLDs["com."].RRset("example.com.", dnswire.TypeDS)) != 1 {
		t.Error("com. lacks DS for example.com.")
	}
	// A signed referral from the root carries the DS set when DO is set.
	res := h.Root.Lookup("www.example.com.", dnswire.TypeA, zone.LookupOptions{DNSSEC: true})
	var haveDS bool
	for _, rr := range res.Authority {
		if rr.Type() == dnswire.TypeDS {
			haveDS = true
		}
	}
	if !haveDS {
		t.Errorf("signed referral lacks DS: %v", res.Authority)
	}
}

// TestResolverWalksBuiltHierarchy resolves through the generated tree via
// the split-horizon engine, proving Views() is a working meta-DNS config.
func TestResolverWalksBuiltHierarchy(t *testing.T) {
	h, err := Build([]string{"example.com.", "other.net."}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	engine := authserver.NewEngine()
	for _, v := range h.Views() {
		if err := engine.AddView(v); err != nil {
			t.Fatal(err)
		}
	}
	ex := &engineExchanger{engine: engine}
	r, err := resolver.New(resolver.Config{
		Roots:     h.NSAddrs["."][:3],
		Exchanger: ex,
		Rand:      rand.New(rand.NewSource(5)),
	})
	if err != nil {
		t.Fatal(err)
	}
	ans, err := r.Resolve(context.Background(), "www.example.com.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Upstream != 3 {
		t.Errorf("upstream = %d, want 3", ans.Upstream)
	}
	if len(ans.Records) != 1 || ans.Records[0].Type() != dnswire.TypeA {
		t.Errorf("records = %v", ans.Records)
	}
	ans, err = r.Resolve(context.Background(), "mail.other.net.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Records) != 1 {
		t.Errorf("other.net records = %v", ans.Records)
	}
}

// engineExchanger answers exchanges straight from an authserver engine,
// passing the queried server address as the split-horizon source (the
// proxies' transformation).
type engineExchanger struct {
	engine *authserver.Engine
}

func (e *engineExchanger) Exchange(ctx context.Context, server netip.AddrPort, q *dnswire.Message) (*dnswire.Message, error) {
	wire, err := q.Pack(nil)
	if err != nil {
		return nil, err
	}
	out, err := e.engine.Respond(wire, server.Addr(), authserver.UDP)
	if err != nil {
		return nil, err
	}
	var resp dnswire.Message
	if err := resp.Unpack(out); err != nil {
		return nil, err
	}
	return &resp, nil
}
