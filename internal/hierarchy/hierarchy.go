// Package hierarchy synthesizes complete multi-level DNS hierarchies —
// root zone, TLD zones, and SLD zones with consistent delegations and
// glue — so experiments run entirely inside the testbed with no Internet
// dependency. It also assembles the split-horizon view set that lets one
// meta-DNS-server serve the whole tree (§2.4).
package hierarchy

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"ldplayer/internal/authserver"
	"ldplayer/internal/dnssec"
	"ldplayer/internal/dnswire"
	"ldplayer/internal/zone"
)

// Options configures hierarchy synthesis.
type Options struct {
	// RootServers is the number of root nameservers (default 13, like
	// the real root).
	RootServers int
	// ServersPerZone is the NS-set size for TLDs and SLDs (default 2).
	ServersPerZone int
	// Signed signs every zone and publishes DS records at the parents.
	Signed bool
	// DNSSEC configures signing when Signed is set.
	DNSSEC dnssec.Config
	// TTL for generated records (default 3600).
	TTL uint32
}

func (o *Options) setDefaults() {
	if o.RootServers <= 0 {
		o.RootServers = 13
	}
	if o.ServersPerZone <= 0 {
		o.ServersPerZone = 2
	}
	if o.TTL == 0 {
		o.TTL = 3600
	}
}

// Hierarchy is a consistent multi-level zone set.
type Hierarchy struct {
	Root *zone.Zone
	// TLDs and SLDs are keyed by canonical origin ("com.", "example.com.").
	TLDs map[string]*zone.Zone
	SLDs map[string]*zone.Zone
	// NSAddrs maps each zone origin to its nameserver addresses — the
	// split-horizon match set and the address pool for proxies.
	NSAddrs map[string][]netip.Addr
}

// addrAlloc hands out deterministic testbed nameserver addresses.
type addrAlloc struct{ next uint32 }

func (a *addrAlloc) take() netip.Addr {
	a.next++
	// 198.18.0.0/15 is reserved for benchmarking — fitting for a testbed.
	v := a.next
	return netip.AddrFrom4([4]byte{198, byte(18 + v>>16&1), byte(v >> 8), byte(v)})
}

// take6 returns the IPv6 companion of the last v4 allocation, so every
// nameserver is dual-stacked like the real root and gTLD servers.
func (a *addrAlloc) take6() netip.Addr {
	v := a.next
	return netip.AddrFrom16([16]byte{0x20, 0x01, 0x0d, 0xb8, 0, 0x53, 0, 0,
		0, 0, 0, 0, byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// Build synthesizes a hierarchy covering every SLD origin in slds
// (e.g. "example.com.", "foo.org."). TLD zones are derived from the SLD
// parents; the root delegates every TLD.
func Build(slds []string, opts Options) (*Hierarchy, error) {
	opts.setDefaults()
	h := &Hierarchy{
		TLDs:    make(map[string]*zone.Zone),
		SLDs:    make(map[string]*zone.Zone),
		NSAddrs: make(map[string][]netip.Addr),
	}
	alloc := &addrAlloc{}

	// Root zone with its server set.
	h.Root = zone.New(".")
	rootNS := make([]string, opts.RootServers)
	if err := h.Root.Add(dnswire.RR{Name: ".", Class: dnswire.ClassINET, TTL: 86400, Data: dnswire.SOA{
		MName: "a.root-servers.net.", RName: "nstld.test.", Serial: 2026070500,
		Refresh: 1800, Retry: 900, Expire: 604800, Minimum: 86400}}); err != nil {
		return nil, err
	}
	for i := 0; i < opts.RootServers; i++ {
		host := fmt.Sprintf("%c.root-servers.net.", 'a'+i)
		rootNS[i] = host
		addr := alloc.take()
		h.NSAddrs["."] = append(h.NSAddrs["."], addr)
		if err := h.Root.Add(dnswire.RR{Name: ".", Class: dnswire.ClassINET, TTL: 518400, Data: dnswire.NS{Host: host}}); err != nil {
			return nil, err
		}
		if err := h.Root.Add(dnswire.RR{Name: host, Class: dnswire.ClassINET, TTL: 518400, Data: dnswire.A{Addr: addr}}); err != nil {
			return nil, err
		}
		v6 := alloc.take6()
		h.NSAddrs["."] = append(h.NSAddrs["."], v6)
		if err := h.Root.Add(dnswire.RR{Name: host, Class: dnswire.ClassINET, TTL: 518400, Data: dnswire.AAAA{Addr: v6}}); err != nil {
			return nil, err
		}
	}

	// Collect TLDs from the SLD list, deterministically ordered.
	tldSet := map[string]bool{}
	for _, sld := range slds {
		sld = dnswire.CanonicalName(sld)
		if dnswire.CountLabels(sld) < 2 {
			return nil, fmt.Errorf("hierarchy: %q is not a second-level domain", sld)
		}
		tldSet[dnswire.ParentName(sld)] = true
	}
	tlds := make([]string, 0, len(tldSet))
	for t := range tldSet {
		tlds = append(tlds, t)
	}
	sort.Strings(tlds)

	// TLD zones, delegated from the root with glue.
	for _, tld := range tlds {
		z := zone.New(tld)
		base := strings.TrimSuffix(tld, ".")
		if err := z.Add(dnswire.RR{Name: tld, Class: dnswire.ClassINET, TTL: opts.TTL, Data: dnswire.SOA{
			MName: "a.gtld." + tld, RName: "nstld.test.", Serial: 1,
			Refresh: 1800, Retry: 900, Expire: 604800, Minimum: 900}}); err != nil {
			return nil, err
		}
		for i := 0; i < opts.ServersPerZone; i++ {
			host := fmt.Sprintf("%c.gtld.%s.", 'a'+i, base)
			addr := alloc.take()
			h.NSAddrs[tld] = append(h.NSAddrs[tld], addr)
			for _, target := range []*zone.Zone{z} {
				if err := target.Add(dnswire.RR{Name: tld, Class: dnswire.ClassINET, TTL: opts.TTL, Data: dnswire.NS{Host: host}}); err != nil {
					return nil, err
				}
				if err := target.Add(dnswire.RR{Name: host, Class: dnswire.ClassINET, TTL: opts.TTL, Data: dnswire.A{Addr: addr}}); err != nil {
					return nil, err
				}
			}
			// Root-side delegation with dual-stack glue.
			v6 := alloc.take6()
			h.NSAddrs[tld] = append(h.NSAddrs[tld], v6)
			if err := h.Root.Add(dnswire.RR{Name: tld, Class: dnswire.ClassINET, TTL: 172800, Data: dnswire.NS{Host: host}}); err != nil {
				return nil, err
			}
			if err := h.Root.Add(dnswire.RR{Name: host, Class: dnswire.ClassINET, TTL: 172800, Data: dnswire.A{Addr: addr}}); err != nil {
				return nil, err
			}
			if err := h.Root.Add(dnswire.RR{Name: host, Class: dnswire.ClassINET, TTL: 172800, Data: dnswire.AAAA{Addr: v6}}); err != nil {
				return nil, err
			}
			if err := z.Add(dnswire.RR{Name: host, Class: dnswire.ClassINET, TTL: 172800, Data: dnswire.AAAA{Addr: v6}}); err != nil {
				return nil, err
			}
		}
		h.TLDs[tld] = z
	}

	// SLD zones, delegated from their TLDs.
	for _, raw := range slds {
		sld := dnswire.CanonicalName(raw)
		if _, dup := h.SLDs[sld]; dup {
			continue
		}
		tld := dnswire.ParentName(sld)
		parent := h.TLDs[tld]
		z := zone.New(sld)
		if err := z.Add(dnswire.RR{Name: sld, Class: dnswire.ClassINET, TTL: opts.TTL, Data: dnswire.SOA{
			MName: "ns1." + sld, RName: "hostmaster." + sld, Serial: 1,
			Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 300}}); err != nil {
			return nil, err
		}
		for i := 0; i < opts.ServersPerZone; i++ {
			host := fmt.Sprintf("ns%d.%s", i+1, sld)
			addr := alloc.take()
			h.NSAddrs[sld] = append(h.NSAddrs[sld], addr)
			if err := z.Add(dnswire.RR{Name: sld, Class: dnswire.ClassINET, TTL: opts.TTL, Data: dnswire.NS{Host: host}}); err != nil {
				return nil, err
			}
			if err := z.Add(dnswire.RR{Name: host, Class: dnswire.ClassINET, TTL: opts.TTL, Data: dnswire.A{Addr: addr}}); err != nil {
				return nil, err
			}
			// Parent-side delegation with glue (in-bailiwick).
			if err := parent.Add(dnswire.RR{Name: sld, Class: dnswire.ClassINET, TTL: opts.TTL, Data: dnswire.NS{Host: host}}); err != nil {
				return nil, err
			}
			if err := parent.Add(dnswire.RR{Name: host, Class: dnswire.ClassINET, TTL: opts.TTL, Data: dnswire.A{Addr: addr}}); err != nil {
				return nil, err
			}
		}
		// Content: apex A, www, mail, a wildcard, and a TXT.
		content := []dnswire.RR{
			{Name: sld, Class: dnswire.ClassINET, TTL: 300, Data: dnswire.A{Addr: alloc.take()}},
			{Name: "www." + sld, Class: dnswire.ClassINET, TTL: 300, Data: dnswire.A{Addr: alloc.take()}},
			{Name: "mail." + sld, Class: dnswire.ClassINET, TTL: 300, Data: dnswire.A{Addr: alloc.take()}},
			{Name: sld, Class: dnswire.ClassINET, TTL: 3600, Data: dnswire.MX{Preference: 10, Host: "mail." + sld}},
			{Name: sld, Class: dnswire.ClassINET, TTL: 3600, Data: dnswire.TXT{Strings: []string{"v=spf1 -all"}}},
			{Name: "*." + sld, Class: dnswire.ClassINET, TTL: 300, Data: dnswire.A{Addr: alloc.take()}},
		}
		if err := z.AddAll(content); err != nil {
			return nil, err
		}
		h.SLDs[sld] = z
	}

	if opts.Signed {
		if err := h.sign(opts); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// sign signs every zone and publishes DS records at the parents.
func (h *Hierarchy) sign(opts Options) error {
	// DS records must be added before signing the parents.
	for tld := range h.TLDs {
		ds, err := dnssec.DSFor(tld, opts.DNSSEC)
		if err != nil {
			return err
		}
		if err := h.Root.Add(dnswire.RR{Name: tld, Class: dnswire.ClassINET, TTL: 86400, Data: ds}); err != nil {
			return err
		}
	}
	for sld, z := range h.SLDs {
		_ = z
		ds, err := dnssec.DSFor(sld, opts.DNSSEC)
		if err != nil {
			return err
		}
		parent := h.TLDs[dnswire.ParentName(sld)]
		if err := parent.Add(dnswire.RR{Name: sld, Class: dnswire.ClassINET, TTL: 86400, Data: ds}); err != nil {
			return err
		}
	}
	if err := dnssec.SignZone(h.Root, opts.DNSSEC); err != nil {
		return err
	}
	for _, z := range h.TLDs {
		if err := dnssec.SignZone(z, opts.DNSSEC); err != nil {
			return err
		}
	}
	for _, z := range h.SLDs {
		if err := dnssec.SignZone(z, opts.DNSSEC); err != nil {
			return err
		}
	}
	return nil
}

// Zones returns every zone keyed by origin.
func (h *Hierarchy) Zones() map[string]*zone.Zone {
	out := map[string]*zone.Zone{".": h.Root}
	for k, v := range h.TLDs {
		out[k] = v
	}
	for k, v := range h.SLDs {
		out[k] = v
	}
	return out
}

// Views assembles the split-horizon view set for the meta-DNS-server: one
// view per zone, matched by that zone's nameserver addresses.
func (h *Hierarchy) Views() []*authserver.View {
	var views []*authserver.View
	for origin, z := range h.Zones() {
		views = append(views, &authserver.View{
			Name:    "zone-" + origin,
			Sources: append([]netip.Addr(nil), h.NSAddrs[origin]...),
			Zones:   []*zone.Zone{z},
		})
	}
	sort.Slice(views, func(i, j int) bool { return views[i].Name < views[j].Name })
	return views
}

// AllNSAddrs returns every nameserver address in the hierarchy, the set
// the authoritative proxy must own in netsim.
func (h *Hierarchy) AllNSAddrs() []netip.Addr {
	var out []netip.Addr
	for _, addrs := range h.NSAddrs {
		out = append(out, addrs...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Validate checks every zone's structural invariants.
func (h *Hierarchy) Validate() []error {
	var errs []error
	for _, z := range h.Zones() {
		errs = append(errs, z.Validate()...)
	}
	return errs
}
