package trace

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/netip"
	"time"
)

// The LDTRC02 block trace format. The LDTRC01 stream (binary.go) frames
// one record per entry, which makes the reader a single-goroutine byte
// crawl: every record costs a length read, a payload read, and a full
// address decode, and nothing about the stream tells a reader where
// entry N lives without reading entries 0..N-1. LDTRC02 restructures
// the same data into self-describing blocks so ingestion parallelizes
// and compresses:
//
//	file   := magic8 block* index trailer
//	block  := header(40B) payload
//	header := u32 blockMagic | u8 codec | u8 flags | u16 reserved |
//	          u32 count | u32 rawLen | u32 storedLen |
//	          i64 firstUnixNano | i64 lastUnixNano | u32 crc32c(payload)
//
// The payload is columnar. Addresses are block-local dictionaries
// (traces revisit the same sources constantly, so an address costs its
// bytes once per block and a short varint per entry after that). Ports
// are fixed-width columns of their own, deliberately outside the
// dictionary: real traces carry a fresh ephemeral source port per
// query, so keying the dictionary on (addr,port) would degenerate it to
// one table entry per trace entry. Timestamps and message lengths are
// zigzag-varint deltas, and the wire messages are one contiguous blob
// at the tail — which is what makes zero-copy ingestion possible: a
// decoded Entry's Message aliases the blob (the mmap itself for
// codec 0) instead of a per-entry copy.
//
//	payload := srcDict dstDict srcIdx* dstIdx* srcPort* dstPort*
//	           proto* timeΔ* lenΔ* msgBlob          (ports u16 BE)
//	dict    := uvarint n, then n × (u8 fam(4|16) | addr[fam])
//
// codec 0 stores the payload raw; codec 1 DEFLATEs it (storedLen is the
// on-disk size, rawLen the decoded size). The writer picks per block:
// with Codec BlockFlate a block that fails to shrink is stored raw, so
// pathological payloads never grow the file.
//
// The index is the seek-and-partition map: per block its file offset,
// entry count, and first/last timestamp. A trailer at EOF points back
// at it. Files cut off before the trailer (a crashed writer) are still
// readable — the reader rebuilds the index by walking block headers.
//
//	index   := u32 indexMagic | u32 nblocks |
//	           nblocks × (i64 offset | u32 count | i64 first | i64 last) |
//	           u32 crc32c(index body)
//	trailer := i64 indexOffset | magic8 trailerMagic

var (
	blockFileMagic = [8]byte{'L', 'D', 'T', 'R', 'C', '0', '2', 0}
	blockTrailer   = [8]byte{'L', 'D', 'I', 'X', 'T', 'R', 'L', 'R'}
)

const (
	blockMagic uint32 = 0x4C444232 // "LDB2"
	indexMagic uint32 = 0x4C444958 // "LDIX"

	blockHeaderSize  = 40
	indexEntrySize   = 28
	blockTrailerSize = 16
)

// Block payload codecs.
const (
	// BlockRaw stores block payloads uncompressed: decode is a column
	// walk and Message bytes alias the stored payload (the mmap, on the
	// fast path) — the replay ingestion codec.
	BlockRaw uint8 = 0
	// BlockFlate DEFLATEs block payloads: the archival codec for
	// multi-day traces. Decode inflates into a fresh slab that entries
	// then alias.
	BlockFlate uint8 = 1
)

// Hard bounds a reader enforces before allocating anything a hostile
// header asks for.
const (
	// MaxBlockEntries bounds the per-block entry count.
	MaxBlockEntries = 1 << 20
	// maxBlockRaw bounds a decoded block payload (64 MiB).
	maxBlockRaw = 64 << 20
	// maxBlockStored bounds an on-disk block payload: DEFLATE can expand
	// incompressible input by a few bytes per 64 KiB window, never more.
	maxBlockStored = maxBlockRaw + maxBlockRaw/1000 + 64
	// minBytesPerEntry is the smallest on-wire footprint one entry can
	// have in a raw payload (src idx + dst idx + proto + timeΔ + lenΔ at
	// one byte each, plus two u16 ports, empty message): count is
	// cross-checked against rawLen with it, so count can never force an
	// allocation rawLen doesn't pay for.
	minBytesPerEntry = 9
)

// Default writer geometry: blocks cut at whichever limit hits first.
const (
	// DefaultBlockEntries is the default entries-per-block target.
	DefaultBlockEntries = 4096
	// defaultBlockBytes caps the raw message bytes buffered per block.
	defaultBlockBytes = 1 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Decode errors are hoisted package vars so the per-block decode path
// stays allocation-free on malformed-input checks too.
var (
	errBlockMagic    = errors.New("trace: bad block magic")
	errBlockCodec    = errors.New("trace: unknown block codec")
	errBlockBounds   = errors.New("trace: block header exceeds format bounds")
	errBlockCRC      = errors.New("trace: block payload CRC mismatch")
	errBlockTruncPay = errors.New("trace: block payload truncated")
	errBlockColumn   = errors.New("trace: block column truncated or malformed")
	errBlockDictIdx  = errors.New("trace: block dictionary index out of range")
	errBlockMsgLen   = errors.New("trace: block message length out of range")
	errBlockProto    = errors.New("trace: bad protocol in block")
	errIndexMagic    = errors.New("trace: bad index magic")
	errIndexCRC      = errors.New("trace: index CRC mismatch")
)

// BlockHeader is the parsed 40-byte per-block header.
type BlockHeader struct {
	Codec     uint8
	Flags     uint8
	Count     uint32
	RawLen    uint32
	StoredLen uint32
	FirstNano int64
	LastNano  int64
	CRC       uint32
}

// AppendBlockHeader appends h's 40-byte encoding to dst. The qlog block
// stream reuses this frame verbatim, so one header parser serves both.
func AppendBlockHeader(dst []byte, h BlockHeader) []byte {
	dst = binary.BigEndian.AppendUint32(dst, blockMagic)
	dst = append(dst, h.Codec, h.Flags, 0, 0)
	dst = binary.BigEndian.AppendUint32(dst, h.Count)
	dst = binary.BigEndian.AppendUint32(dst, h.RawLen)
	dst = binary.BigEndian.AppendUint32(dst, h.StoredLen)
	dst = binary.BigEndian.AppendUint64(dst, uint64(h.FirstNano))
	dst = binary.BigEndian.AppendUint64(dst, uint64(h.LastNano))
	dst = binary.BigEndian.AppendUint32(dst, h.CRC)
	return dst
}

// BlockHeaderSize is the encoded size of a block header.
const BlockHeaderSize = blockHeaderSize

// ParseBlockHeader decodes and bounds-checks a block header. It rejects
// anything a reader should not allocate for: oversized counts and
// lengths, counts a raw payload cannot actually hold, unknown codecs.
func ParseBlockHeader(buf []byte) (BlockHeader, error) {
	var h BlockHeader
	if len(buf) < blockHeaderSize {
		return h, io.ErrUnexpectedEOF
	}
	if binary.BigEndian.Uint32(buf) != blockMagic {
		return h, errBlockMagic
	}
	h.Codec = buf[4]
	h.Flags = buf[5]
	h.Count = binary.BigEndian.Uint32(buf[8:])
	h.RawLen = binary.BigEndian.Uint32(buf[12:])
	h.StoredLen = binary.BigEndian.Uint32(buf[16:])
	h.FirstNano = int64(binary.BigEndian.Uint64(buf[20:]))
	h.LastNano = int64(binary.BigEndian.Uint64(buf[28:]))
	h.CRC = binary.BigEndian.Uint32(buf[36:])
	if h.Codec != BlockRaw && h.Codec != BlockFlate {
		return h, errBlockCodec
	}
	if h.Count > MaxBlockEntries || h.RawLen > maxBlockRaw || h.StoredLen > maxBlockStored {
		return h, errBlockBounds
	}
	if h.Codec == BlockRaw && h.StoredLen != h.RawLen {
		return h, errBlockBounds
	}
	if h.Count > 0 && uint64(h.RawLen) < uint64(h.Count)*minBytesPerEntry {
		return h, errBlockBounds
	}
	return h, nil
}

// BlockCRC is the payload checksum used by the block frame (CRC-32C).
func BlockCRC(payload []byte) uint32 { return crc32.Checksum(payload, castagnoli) }

// IndexEntry locates one block inside a block trace file.
type IndexEntry struct {
	// Offset is the block header's position from the start of the file.
	Offset int64
	// Count is the block's entry count.
	Count uint32
	// FirstNano and LastNano bracket the block's timestamps.
	FirstNano int64
	LastNano  int64
}

// appendIndex appends the footer index + trailer for blocks to dst.
// fileOff is the file offset the index will land at — the trailer points
// back to it.
func appendIndex(dst []byte, blocks []IndexEntry, fileOff int64) []byte {
	start := len(dst)
	dst = binary.BigEndian.AppendUint32(dst, indexMagic)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(blocks)))
	for _, b := range blocks {
		dst = binary.BigEndian.AppendUint64(dst, uint64(b.Offset))
		dst = binary.BigEndian.AppendUint32(dst, b.Count)
		dst = binary.BigEndian.AppendUint64(dst, uint64(b.FirstNano))
		dst = binary.BigEndian.AppendUint64(dst, uint64(b.LastNano))
	}
	dst = binary.BigEndian.AppendUint32(dst, crc32.Checksum(dst[start+4:], castagnoli))
	dst = binary.BigEndian.AppendUint64(dst, uint64(fileOff))
	return append(dst, blockTrailer[:]...)
}

// parseIndex decodes a footer index (starting at the index magic).
func parseIndex(buf []byte) ([]IndexEntry, error) {
	if len(buf) < 8+4 {
		return nil, io.ErrUnexpectedEOF
	}
	if binary.BigEndian.Uint32(buf) != indexMagic {
		return nil, errIndexMagic
	}
	n := int(binary.BigEndian.Uint32(buf[4:]))
	body := 8 + n*indexEntrySize
	if n < 0 || len(buf) < body+4 {
		return nil, io.ErrUnexpectedEOF
	}
	if binary.BigEndian.Uint32(buf[body:]) != crc32.Checksum(buf[4:body], castagnoli) {
		return nil, errIndexCRC
	}
	idx := make([]IndexEntry, n)
	for i := range idx {
		off := 8 + i*indexEntrySize
		idx[i] = IndexEntry{
			Offset:    int64(binary.BigEndian.Uint64(buf[off:])),
			Count:     binary.BigEndian.Uint32(buf[off+8:]),
			FirstNano: int64(binary.BigEndian.Uint64(buf[off+12:])),
			LastNano:  int64(binary.BigEndian.Uint64(buf[off+20:])),
		}
	}
	return idx, nil
}

// BlockWriterOptions shape a BlockWriter.
type BlockWriterOptions struct {
	// Codec is BlockRaw (default, replay-speed) or BlockFlate
	// (archival). Flate blocks that fail to shrink are stored raw.
	Codec uint8
	// BlockEntries cuts a block after this many entries (default
	// DefaultBlockEntries).
	BlockEntries int
	// BlockBytes cuts a block once its raw message bytes reach this
	// (default 1 MiB), so huge messages cannot balloon a block.
	BlockBytes int
}

// BlockWriter writes the LDTRC02 block format. It implements Writer;
// Close (not just Flush) finishes the file — it cuts the final block and
// writes the footer index the reader seeks and partitions by.
type BlockWriter struct {
	w    io.Writer
	opts BlockWriterOptions

	wroteHead bool
	off       int64
	blocks    []IndexEntry

	// Per-block accumulation: columnar scratch buffers plus the
	// dictionaries mapping addresses to block-local indices. Ports live
	// in their own fixed-width columns, NOT in the dictionary: real
	// traces carry a fresh ephemeral source port per query, so an
	// (addr,port)-keyed dictionary degenerates to one table entry per
	// entry and costs more than the addresses it was meant to dedup.
	count     int
	firstNano int64
	lastNano  int64
	prevNano  int64
	prevLen   int64
	srcDict   map[netip.Addr]uint32
	dstDict   map[netip.Addr]uint32
	srcTab    []byte // encoded dictionary entries, in index order
	dstTab    []byte
	srcIdx    []byte
	dstIdx    []byte
	srcPorts  []byte // u16 BE per entry
	dstPorts  []byte
	protos    []byte
	times     []byte
	lens      []byte
	msgs      []byte

	scratch []byte // assembled payload (and header) staging
	zbuf    bytes.Buffer
	zw      *flate.Writer
}

// NewBlockWriter creates a BlockWriter on w with default options.
func NewBlockWriter(w io.Writer) *BlockWriter {
	return NewBlockWriterOptions(w, BlockWriterOptions{})
}

// NewBlockWriterOptions creates a BlockWriter with explicit options.
func NewBlockWriterOptions(w io.Writer, opts BlockWriterOptions) *BlockWriter {
	if opts.BlockEntries <= 0 {
		opts.BlockEntries = DefaultBlockEntries
	}
	if opts.BlockEntries > MaxBlockEntries {
		opts.BlockEntries = MaxBlockEntries
	}
	if opts.BlockBytes <= 0 {
		opts.BlockBytes = defaultBlockBytes
	}
	return &BlockWriter{
		w:       w,
		opts:    opts,
		srcDict: make(map[netip.Addr]uint32),
		dstDict: make(map[netip.Addr]uint32),
	}
}

// appendDictAddr encodes one dictionary entry (fam, addr).
func appendDictAddr(dst []byte, a netip.Addr) []byte {
	if a.Is4() || a.Is4In6() {
		a4 := a.As4()
		dst = append(dst, 4)
		dst = append(dst, a4[:]...)
	} else {
		a16 := a.As16()
		dst = append(dst, 16)
		dst = append(dst, a16[:]...)
	}
	return dst
}

// dictIndex interns a in dict/tab and returns its block-local index.
func (b *BlockWriter) dictIndex(dict map[netip.Addr]uint32, tab *[]byte, a netip.Addr) uint32 {
	if i, ok := dict[a]; ok {
		return i
	}
	i := uint32(len(dict))
	dict[a] = i
	*tab = appendDictAddr(*tab, a)
	return i
}

// Write implements Writer: the entry joins the current block's columns,
// and the block is cut when it reaches the configured geometry.
func (b *BlockWriter) Write(e Entry) error {
	if !b.wroteHead {
		if _, err := b.w.Write(blockFileMagic[:]); err != nil {
			return err
		}
		b.off = int64(len(blockFileMagic))
		b.wroteHead = true
	}
	nano := e.Time.UnixNano()
	if b.count == 0 {
		b.firstNano = nano
		b.prevNano = nano
		b.prevLen = 0
	}
	b.lastNano = nano

	b.srcIdx = binary.AppendUvarint(b.srcIdx, uint64(b.dictIndex(b.srcDict, &b.srcTab, e.Src.Addr())))
	b.dstIdx = binary.AppendUvarint(b.dstIdx, uint64(b.dictIndex(b.dstDict, &b.dstTab, e.Dst.Addr())))
	b.srcPorts = binary.BigEndian.AppendUint16(b.srcPorts, e.Src.Port())
	b.dstPorts = binary.BigEndian.AppendUint16(b.dstPorts, e.Dst.Port())
	b.protos = append(b.protos, byte(e.Protocol))
	b.times = binary.AppendVarint(b.times, nano-b.prevNano)
	b.prevNano = nano
	b.lens = binary.AppendVarint(b.lens, int64(len(e.Message))-b.prevLen)
	b.prevLen = int64(len(e.Message))
	b.msgs = append(b.msgs, e.Message...)
	b.count++

	if b.count >= b.opts.BlockEntries || len(b.msgs) >= b.opts.BlockBytes {
		return b.cutBlock()
	}
	return nil
}

// cutBlock assembles, optionally compresses, and writes the current
// block, then resets the per-block state.
func (b *BlockWriter) cutBlock() error {
	if b.count == 0 {
		return nil
	}
	p := b.scratch[:0]
	p = binary.AppendUvarint(p, uint64(len(b.srcDict)))
	p = append(p, b.srcTab...)
	p = binary.AppendUvarint(p, uint64(len(b.dstDict)))
	p = append(p, b.dstTab...)
	p = append(p, b.srcIdx...)
	p = append(p, b.dstIdx...)
	p = append(p, b.srcPorts...)
	p = append(p, b.dstPorts...)
	p = append(p, b.protos...)
	p = append(p, b.times...)
	p = append(p, b.lens...)
	p = append(p, b.msgs...)
	b.scratch = p

	codec := b.opts.Codec
	stored := p
	if codec == BlockFlate {
		b.zbuf.Reset()
		if b.zw == nil {
			// BlockFlate is the archival codec: encode cost is paid once at
			// conversion time, so spend it on ratio rather than speed. (The
			// qlog live sink keeps DefaultCompression — it compresses on the
			// telemetry hot path.)
			zw, err := flate.NewWriter(&b.zbuf, flate.BestCompression)
			if err != nil {
				return err
			}
			b.zw = zw
		} else {
			b.zw.Reset(&b.zbuf)
		}
		if _, err := b.zw.Write(p); err != nil {
			return err
		}
		if err := b.zw.Close(); err != nil {
			return err
		}
		if b.zbuf.Len() < len(p) {
			stored = b.zbuf.Bytes()
		} else {
			codec = BlockRaw // incompressible: store raw, never grow
		}
	}

	hdr := BlockHeader{
		Codec:     codec,
		Count:     uint32(b.count),
		RawLen:    uint32(len(p)),
		StoredLen: uint32(len(stored)),
		FirstNano: b.firstNano,
		LastNano:  b.lastNano,
		CRC:       BlockCRC(stored),
	}
	var hbuf [blockHeaderSize]byte
	if _, err := b.w.Write(AppendBlockHeader(hbuf[:0], hdr)); err != nil {
		return err
	}
	if _, err := b.w.Write(stored); err != nil {
		return err
	}
	b.blocks = append(b.blocks, IndexEntry{
		Offset:    b.off,
		Count:     hdr.Count,
		FirstNano: hdr.FirstNano,
		LastNano:  hdr.LastNano,
	})
	b.off += int64(blockHeaderSize + len(stored))

	b.count = 0
	clear(b.srcDict)
	clear(b.dstDict)
	b.srcTab = b.srcTab[:0]
	b.dstTab = b.dstTab[:0]
	b.srcIdx = b.srcIdx[:0]
	b.dstIdx = b.dstIdx[:0]
	b.srcPorts = b.srcPorts[:0]
	b.dstPorts = b.dstPorts[:0]
	b.protos = b.protos[:0]
	b.times = b.times[:0]
	b.lens = b.lens[:0]
	b.msgs = b.msgs[:0]
	return nil
}

// Flush cuts the in-progress block so everything written so far is on
// the wire. It does NOT write the footer index; call Close to finish
// the file.
func (b *BlockWriter) Flush() error { return b.cutBlock() }

// Close cuts the final block and writes the footer index + trailer. The
// underlying writer is not closed. A file abandoned before Close is
// still readable (the reader rebuilds the index by scanning), it just
// cannot be partitioned without that scan.
func (b *BlockWriter) Close() error {
	if err := b.cutBlock(); err != nil {
		return err
	}
	if !b.wroteHead {
		// An empty trace still gets a valid (zero-block) file.
		if _, err := b.w.Write(blockFileMagic[:]); err != nil {
			return err
		}
		b.off = int64(len(blockFileMagic))
		b.wroteHead = true
	}
	_, err := b.w.Write(appendIndex(b.scratch[:0], b.blocks, b.off))
	return err
}

// blockColumns is the parsed view of one raw block payload: dictionary
// slices plus cursors over each column. Decoding an entry advances every
// cursor once; all bounds were pre-validated against the header.
type blockColumns struct {
	src, dst []netip.Addr
	srcIdx   varCursor
	dstIdx   varCursor
	srcPorts []byte // u16 BE per entry
	dstPorts []byte
	protos   []byte
	times    varCursor
	lens     varCursor
	msgs     []byte
	msgOff   int
	prevNano int64
	prevLen  int64
}

// varCursor walks one varint column.
type varCursor struct {
	buf []byte
	off int
}

// uvarint decodes the next unsigned varint; ok=false on truncation or
// overflow.
//
//ldlint:noalloc
func (c *varCursor) uvarint() (uint64, bool) {
	v, n := binary.Uvarint(c.buf[c.off:])
	if n <= 0 {
		return 0, false
	}
	c.off += n
	return v, true
}

// varint decodes the next zigzag varint; ok=false on truncation or
// overflow.
//
//ldlint:noalloc
func (c *varCursor) varint() (int64, bool) {
	v, n := binary.Varint(c.buf[c.off:])
	if n <= 0 {
		return 0, false
	}
	c.off += n
	return v, true
}

// parseDict reads one address dictionary off the front of buf,
// returning the parsed table and the remaining bytes. The table size is
// bounded by the block entry count: a dictionary can never be larger
// than the number of entries that reference it.
func parseDict(buf []byte, maxEntries uint32) ([]netip.Addr, []byte, error) {
	n, w := binary.Uvarint(buf)
	if w <= 0 || n > uint64(maxEntries) {
		return nil, nil, errBlockColumn
	}
	buf = buf[w:]
	tab := make([]netip.Addr, n)
	for i := range tab {
		if len(buf) < 1 {
			return nil, nil, errBlockColumn
		}
		fam := int(buf[0])
		if fam != 4 && fam != 16 {
			return nil, nil, errBlockColumn
		}
		if len(buf) < 1+fam {
			return nil, nil, errBlockColumn
		}
		if fam == 4 {
			tab[i] = netip.AddrFrom4([4]byte(buf[1:5]))
		} else {
			tab[i] = netip.AddrFrom16([16]byte(buf[1:17])).Unmap()
		}
		buf = buf[1+fam:]
	}
	return tab, buf, nil
}

// splitColumn carves n varints (or, for width > 0, n fixed-width cells)
// off the front of buf without decoding them, so column extents are
// known before the entry loop runs.
func splitVarColumn(buf []byte, n uint32) (col, rest []byte, err error) {
	off := 0
	for i := uint32(0); i < n; i++ {
		_, w := binary.Uvarint(buf[off:])
		if w <= 0 {
			return nil, nil, errBlockColumn
		}
		off += w
	}
	return buf[:off], buf[off:], nil
}

// parseBlockColumns validates the payload layout of one raw block and
// returns cursors positioned at each column.
func parseBlockColumns(hdr BlockHeader, raw []byte) (blockColumns, error) {
	var bc blockColumns
	var err error
	if bc.src, raw, err = parseDict(raw, hdr.Count); err != nil {
		return bc, err
	}
	if bc.dst, raw, err = parseDict(raw, hdr.Count); err != nil {
		return bc, err
	}
	var col []byte
	if col, raw, err = splitVarColumn(raw, hdr.Count); err != nil {
		return bc, err
	}
	bc.srcIdx = varCursor{buf: col}
	if col, raw, err = splitVarColumn(raw, hdr.Count); err != nil {
		return bc, err
	}
	bc.dstIdx = varCursor{buf: col}
	// Fixed-width columns: two u16 port columns, then one proto byte per
	// entry. Count is bounded by MaxBlockEntries, so 5*Count cannot
	// overflow.
	if uint64(len(raw)) < 5*uint64(hdr.Count) {
		return bc, errBlockColumn
	}
	bc.srcPorts = raw[:2*hdr.Count]
	raw = raw[2*hdr.Count:]
	bc.dstPorts = raw[:2*hdr.Count]
	raw = raw[2*hdr.Count:]
	bc.protos = raw[:hdr.Count]
	raw = raw[hdr.Count:]
	if col, raw, err = splitVarColumn(raw, hdr.Count); err != nil {
		return bc, err
	}
	bc.times = varCursor{buf: col}
	if col, raw, err = splitVarColumn(raw, hdr.Count); err != nil {
		return bc, err
	}
	bc.lens = varCursor{buf: col}
	bc.msgs = raw
	bc.prevNano = hdr.FirstNano
	return bc, nil
}

// next decodes one entry from the columns into *e. The entry's Message
// aliases the msgs blob — the caller owns the blob's lifetime and must
// treat it as immutable (the Entry.Message contract).
//
//ldlint:noalloc
func (bc *blockColumns) next(i uint32, e *Entry) error {
	si, ok := bc.srcIdx.uvarint()
	if !ok || si >= uint64(len(bc.src)) {
		return errBlockDictIdx
	}
	di, ok := bc.dstIdx.uvarint()
	if !ok || di >= uint64(len(bc.dst)) {
		return errBlockDictIdx
	}
	proto := bc.protos[i]
	if proto > uint8(TLS) {
		return errBlockProto
	}
	dt, ok := bc.times.varint()
	if !ok {
		return errBlockColumn
	}
	// First entry's delta is relative to the header's FirstNano and must
	// be zero for a well-formed block; tolerate any delta — the format
	// guarantees only what the columns say.
	nano := bc.prevNano + dt
	bc.prevNano = nano
	dl, ok := bc.lens.varint()
	if !ok {
		return errBlockColumn
	}
	mlen := bc.prevLen + dl
	if mlen < 0 || mlen > int64(len(bc.msgs)-bc.msgOff) {
		return errBlockMsgLen
	}
	bc.prevLen = mlen
	e.Time = time.Unix(0, nano)
	e.Src = netip.AddrPortFrom(bc.src[si], binary.BigEndian.Uint16(bc.srcPorts[2*i:]))
	e.Dst = netip.AddrPortFrom(bc.dst[di], binary.BigEndian.Uint16(bc.dstPorts[2*i:]))
	e.Protocol = Protocol(proto)
	e.Message = bc.msgs[bc.msgOff : bc.msgOff+int(mlen) : bc.msgOff+int(mlen)]
	bc.msgOff += int(mlen)
	return nil
}

// DecodeBlock decodes one block (header + stored payload) into dst,
// which must have capacity for hdr.Count entries; it returns the filled
// slice. Message fields alias stored when hdr.Codec is BlockRaw, or a
// freshly inflated slab otherwise — either way the backing bytes are
// never recycled, preserving the Entry.Message immutability contract.
func DecodeBlock(hdr BlockHeader, stored []byte, dst []Entry) ([]Entry, error) {
	if uint64(len(stored)) != uint64(hdr.StoredLen) {
		return nil, errBlockTruncPay
	}
	if BlockCRC(stored) != hdr.CRC {
		return nil, errBlockCRC
	}
	raw := stored
	if hdr.Codec == BlockFlate {
		slab := make([]byte, hdr.RawLen)
		zr := flate.NewReader(bytes.NewReader(stored))
		if _, err := io.ReadFull(zr, slab); err != nil {
			return nil, fmt.Errorf("trace: inflating block: %w", err)
		}
		// A trailing read must hit EOF: extra hidden payload is malformed.
		var one [1]byte
		if n, _ := zr.Read(one[:]); n != 0 {
			return nil, errBlockBounds
		}
		raw = slab
	} else if uint64(len(raw)) != uint64(hdr.RawLen) {
		return nil, errBlockTruncPay
	}
	bc, err := parseBlockColumns(hdr, raw)
	if err != nil {
		return nil, err
	}
	if uint64(cap(dst)) < uint64(hdr.Count) {
		dst = make([]Entry, hdr.Count)
	}
	dst = dst[:hdr.Count]
	for i := uint32(0); i < hdr.Count; i++ {
		if err := bc.next(i, &dst[i]); err != nil {
			return nil, err
		}
	}
	return dst, nil
}
