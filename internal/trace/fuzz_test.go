package trace

import (
	"bytes"
	"encoding/binary"
	"io"
	"net/netip"
	"testing"
	"time"
)

// fuzzTraceSeeds returns encoded block traces for both fuzzers: benign
// raw and flate files plus pre-damaged variants, so coverage starts past
// the magic check.
func fuzzTraceSeeds(t testing.TB) [][]byte {
	t.Helper()
	entries := make([]Entry, 40)
	base := time.Unix(1500000000, 0)
	for i := range entries {
		entries[i] = Entry{
			Time:     base.Add(time.Duration(i) * time.Millisecond),
			Src:      netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 0, 0, byte(i % 5)}), uint16(1000+i)),
			Dst:      netip.MustParseAddrPort("[2001:db8::53]:53"),
			Protocol: Protocol(i % 3),
			Message:  bytes.Repeat([]byte{byte(i), 0xAB}, 6+i%9),
		}
	}
	var seeds [][]byte
	for _, opts := range []BlockWriterOptions{
		{BlockEntries: 16},
		{Codec: BlockFlate, BlockEntries: 8},
	} {
		data, err := WriteBlockTrace(entries, opts)
		if err != nil {
			t.Fatal(err)
		}
		seeds = append(seeds, data)
		// Torn tail and a flipped payload byte.
		seeds = append(seeds, data[:len(data)*2/3])
		bad := bytes.Clone(data)
		bad[len(bad)/2] ^= 0xff
		seeds = append(seeds, bad)
	}
	return seeds
}

// FuzzBlockDecode feeds arbitrary bytes to the whole LDTRC02 read path
// — open, index load (footer or scan fallback), parallel block decode.
// Hostile input must error, never panic, and per-block bounds mean it
// cannot make the decoder allocate unboundedly either.
func FuzzBlockDecode(f *testing.F) {
	for _, s := range fuzzTraceSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		br, err := NewBlockReaderAt(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return
		}
		defer br.Close()
		for i := 0; i < 1<<20; i++ {
			if _, err := br.Next(); err != nil {
				break
			}
		}
	})
}

// FuzzBlockHeader exercises the header parser and the stored-payload
// decoder directly: whatever the header claims, DecodeBlock must either
// reproduce entries or reject the payload.
func FuzzBlockHeader(f *testing.F) {
	for _, s := range fuzzTraceSeeds(f) {
		if len(s) > 8 {
			f.Add(s[8:])
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, err := ParseBlockHeader(data)
		if err != nil {
			return
		}
		stored := data[BlockHeaderSize:]
		if uint64(len(stored)) > uint64(hdr.StoredLen) {
			stored = stored[:hdr.StoredLen]
		}
		_, _ = DecodeBlock(hdr, stored, nil)
	})
}

// FuzzBlockRoundTrip derives a trace from the fuzzed bytes, encodes it
// with fuzz-chosen block geometry, and requires the decode to be exact.
func FuzzBlockRoundTrip(f *testing.F) {
	f.Add([]byte("\x01\x02\x03seed entropy for the round trip"), uint8(4), false)
	f.Add(bytes.Repeat([]byte{0xEE, 0x07}, 300), uint8(1), true)
	f.Fuzz(func(t *testing.T, data []byte, blockEntries uint8, compress bool) {
		entries := entriesFromFuzz(data)
		opts := BlockWriterOptions{BlockEntries: int(blockEntries)}
		if compress {
			opts.Codec = BlockFlate
		}
		encoded, err := WriteBlockTrace(entries, opts)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		br, err := NewBlockReaderAt(bytes.NewReader(encoded), int64(len(encoded)))
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		defer br.Close()
		for i := range entries {
			got, err := br.Next()
			if err != nil {
				t.Fatalf("entry %d: %v", i, err)
			}
			want := entries[i]
			if !got.Time.Equal(want.Time) || got.Src != want.Src || got.Dst != want.Dst ||
				got.Protocol != want.Protocol || !bytes.Equal(got.Message, want.Message) {
				t.Fatalf("entry %d mismatch:\n got %+v\nwant %+v", i, got, want)
			}
		}
		if _, err := br.Next(); err != io.EOF {
			t.Fatalf("after last entry: %v, want io.EOF", err)
		}
	})
}

// entriesFromFuzz deterministically expands fuzz bytes into trace
// entries: each 8-byte chunk seeds one entry's timestamp delta,
// addresses, protocol, and message shape.
func entriesFromFuzz(data []byte) []Entry {
	n := len(data) / 8
	if n > 256 {
		n = 256
	}
	entries := make([]Entry, 0, n)
	prev := time.Unix(1400000000, 0)
	for i := 0; i < n; i++ {
		c := data[i*8 : i*8+8]
		v := binary.LittleEndian.Uint64(c)
		// Deltas may be negative: block encoding must survive
		// out-of-order timestamps.
		prev = prev.Add(time.Duration(int64(v%2_000_000) - 500_000))
		var src netip.AddrPort
		if c[0]&1 == 0 {
			src = netip.AddrPortFrom(netip.AddrFrom4([4]byte{c[1], c[2], c[3], c[4]}), uint16(v>>16))
		} else {
			var a16 [16]byte
			copy(a16[:], bytes.Repeat(c[:4], 4))
			src = netip.AddrPortFrom(netip.AddrFrom16(a16), uint16(v>>24))
		}
		msgLen := int(c[5]) % 64
		msg := make([]byte, msgLen)
		for j := range msg {
			msg[j] = c[j%8] ^ byte(j)
		}
		entries = append(entries, Entry{
			Time:     prev,
			Src:      src,
			Dst:      netip.AddrPortFrom(netip.AddrFrom4([4]byte{198, 41, 0, c[6]}), 53),
			Protocol: Protocol(c[7] % 3),
			Message:  msg,
		})
	}
	return entries
}
