package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// The customized binary stream (§2.5, Figure 3): the length of each
// message is pre-pended so the replay engine can carve the stream into
// internal messages without parsing DNS. Layout per record (big endian):
//
//	uint32  payload length (everything after this field)
//	int64   timestamp, unix nanoseconds
//	uint8   address family: 4 or 16 (applies to both addresses)
//	[n]byte src address  (4 or 16 bytes)
//	uint16  src port
//	[n]byte dst address
//	uint16  dst port
//	uint8   protocol
//	[...]   wire-format DNS message
//
// The stream starts with an 8-byte magic "LDPLAY01" so truncated or
// mis-typed input fails fast.

var binaryMagic = [8]byte{'L', 'D', 'P', 'L', 'A', 'Y', '0', '1'}

// maxBinaryRecord bounds a record payload: timestamp + addresses + the
// largest possible DNS message.
const maxBinaryRecord = 8 + 1 + 2*(16+2) + 1 + 1<<16

// BinaryWriter writes the internal-message stream.
type BinaryWriter struct {
	w         *bufio.Writer
	wroteHead bool
	scratch   []byte
}

// NewBinaryWriter creates a BinaryWriter on w.
func NewBinaryWriter(w io.Writer) *BinaryWriter {
	return &BinaryWriter{w: bufio.NewWriterSize(w, 256*1024)}
}

// Write implements Writer.
func (b *BinaryWriter) Write(e Entry) error {
	if !b.wroteHead {
		if _, err := b.w.Write(binaryMagic[:]); err != nil {
			return err
		}
		b.wroteHead = true
	}
	b.scratch = MarshalEntry(b.scratch[:0], e)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(b.scratch)))
	if _, err := b.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := b.w.Write(b.scratch)
	return err
}

// Flush flushes buffered output.
func (b *BinaryWriter) Flush() error { return b.w.Flush() }

// BinaryReader reads the internal-message stream.
type BinaryReader struct {
	r        *bufio.Reader
	readHead bool
	// slab is the carve-out arena for record payloads on the batch decode
	// path: one allocation serves many records, so the reader goroutine
	// stops paying one make per entry.
	slab []byte
}

// slabSize is the batch-decode arena granularity. Records larger than the
// remaining slab get a fresh one, so a slab pins at most slabSize bytes
// past the lifetime of the entries carved from it.
const slabSize = 512 * 1024

// NewBinaryReader creates a BinaryReader on r.
func NewBinaryReader(r io.Reader) *BinaryReader {
	return &BinaryReader{r: bufio.NewReaderSize(r, 256*1024)}
}

// head consumes and validates the stream magic on first use.
func (b *BinaryReader) head() error {
	if b.readHead {
		return nil
	}
	var magic [8]byte
	if _, err := io.ReadFull(b.r, magic[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("trace: reading binary magic: %w", err)
	}
	if magic != binaryMagic {
		return fmt.Errorf("trace: bad binary magic %q", magic[:])
	}
	b.readHead = true
	return nil
}

// next reads one record payload into buf (freshly carved) and decodes it.
// The length prefix is peeked out of the bufio buffer rather than read
// into a local array: a local escaping into io.ReadFull's interface
// argument costs a heap allocation per record.
//
//ldlint:noalloc
func (b *BinaryReader) next() (Entry, error) {
	hdr, err := b.r.Peek(4)
	if len(hdr) < 4 {
		if len(hdr) == 0 && err == io.EOF {
			return Entry{}, io.EOF
		}
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Entry{}, err
	}
	n := int(binary.BigEndian.Uint32(hdr))
	if _, err := b.r.Discard(4); err != nil {
		return Entry{}, err
	}
	if n > maxBinaryRecord {
		return Entry{}, errBinaryRecordSize
	}
	if len(b.slab) < n {
		b.slab = make([]byte, max(slabSize, n)) //ldlint:ignore noalloc amortized slab refill, one make per slabSize bytes
	}
	buf := b.slab[:n:n]
	b.slab = b.slab[n:]
	if _, err := io.ReadFull(b.r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Entry{}, err
	}
	return UnmarshalEntry(buf)
}

// Hoisted record-level errors: the decode hot path must not build
// formatted errors per record.
var (
	errBinaryRecordSize = errors.New("trace: binary record exceeds the record size limit")
)

// Next implements Reader.
func (b *BinaryReader) Next() (Entry, error) {
	if err := b.head(); err != nil {
		return Entry{}, err
	}
	return b.next()
}

// NextBatch implements BatchReader: it decodes up to len(dst) consecutive
// records in one call, carving their payloads out of a shared slab.
func (b *BinaryReader) NextBatch(dst []Entry) (int, error) {
	if err := b.head(); err != nil {
		return 0, err
	}
	for i := range dst {
		e, err := b.next()
		if err != nil {
			if err == io.EOF && i > 0 {
				return i, nil
			}
			return i, err
		}
		dst[i] = e
	}
	return len(dst), nil
}
