//go:build linux

package trace

import (
	"os"
	"syscall"
)

// mmapFile maps f read-only. The mapping is shared by every partition
// of a block reader; unmap runs once, from the owning reader's Close,
// after all entries decoded from it are dead (see the aliasing contract
// on BlockReader).
func mmapFile(f *os.File, size int64) ([]byte, bool) {
	if size <= 0 || size != int64(int(size)) {
		return nil, false
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false
	}
	// The reader walks blocks front to back; tell the kernel so
	// readahead stays ahead of the decode workers.
	_ = syscall.Madvise(data, syscall.MADV_SEQUENTIAL)
	return data, true
}

func munmapFile(data []byte) error { return syscall.Munmap(data) }
