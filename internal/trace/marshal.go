package trace

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"time"
)

// MarshalEntry appends the internal-message record encoding of e (the
// payload that follows the length prefix in the binary stream format) to
// buf. The controller-to-distributor links reuse this encoding.
func MarshalEntry(buf []byte, e Entry) []byte {
	src, dst := e.Src.Addr(), e.Dst.Addr()
	fam := byte(4)
	if src.Is6() || dst.Is6() {
		fam = 16
	}
	buf = binary.BigEndian.AppendUint64(buf, uint64(e.Time.UnixNano()))
	buf = append(buf, fam)
	appendAddr := func(ap AddrPort) []byte {
		if fam == 4 {
			a4 := ap.Addr().As4()
			buf = append(buf, a4[:]...)
		} else {
			a16 := ap.Addr().As16()
			buf = append(buf, a16[:]...)
		}
		return binary.BigEndian.AppendUint16(buf, ap.Port())
	}
	buf = appendAddr(e.Src)
	buf = appendAddr(e.Dst)
	buf = append(buf, byte(e.Protocol))
	return append(buf, e.Message...)
}

// AddrPort aliases netip.AddrPort for the helper above.
type AddrPort = netip.AddrPort

// UnmarshalEntry decodes a record payload produced by MarshalEntry. The
// returned entry's Message aliases buf.
func UnmarshalEntry(buf []byte) (Entry, error) {
	if len(buf) < 8+1 {
		return Entry{}, fmt.Errorf("trace: record too short")
	}
	var e Entry
	e.Time = time.Unix(0, int64(binary.BigEndian.Uint64(buf)))
	fam := buf[8]
	if fam != 4 && fam != 16 {
		return Entry{}, fmt.Errorf("trace: bad address family %d", fam)
	}
	addrLen := int(fam)
	need := 9 + 2*(addrLen+2) + 1
	if len(buf) < need {
		return Entry{}, fmt.Errorf("trace: record too short for addresses")
	}
	off := 9
	readAddr := func() netip.AddrPort {
		var a netip.Addr
		if fam == 4 {
			a = netip.AddrFrom4([4]byte(buf[off : off+4]))
		} else {
			a = netip.AddrFrom16([16]byte(buf[off : off+16])).Unmap()
		}
		off += addrLen
		p := binary.BigEndian.Uint16(buf[off:])
		off += 2
		return netip.AddrPortFrom(a, p)
	}
	e.Src = readAddr()
	e.Dst = readAddr()
	e.Protocol = Protocol(buf[off])
	off++
	e.Message = buf[off:]
	return e, nil
}
