package trace

import (
	"encoding/binary"
	"errors"
	"net/netip"
	"time"
)

// Hoisted record-level errors (see UnmarshalEntry's noalloc contract).
var (
	errRecordShort      = errors.New("trace: record too short")
	errRecordFamily     = errors.New("trace: bad record address family")
	errRecordShortAddrs = errors.New("trace: record too short for addresses")
)

// MarshalEntry appends the internal-message record encoding of e (the
// payload that follows the length prefix in the binary stream format) to
// buf. The controller-to-distributor links reuse this encoding.
// (Written closure-free: a closure capturing the growing buffer costs a
// heap allocation per record on the encode path.)
//
//ldlint:noalloc
func MarshalEntry(buf []byte, e Entry) []byte {
	src, dst := e.Src.Addr(), e.Dst.Addr()
	fam := byte(4)
	if src.Is6() || dst.Is6() {
		fam = 16
	}
	buf = binary.BigEndian.AppendUint64(buf, uint64(e.Time.UnixNano()))
	buf = append(buf, fam)
	if fam == 4 {
		//ldlint:ignore escapecheck netip.As4 panic-message strings: only the impossible wrong-family panic path materializes them, the fam guard above keeps it unreachable
		a4 := src.As4()
		buf = append(buf, a4[:]...)
	} else {
		a16 := src.As16()
		buf = append(buf, a16[:]...)
	}
	buf = binary.BigEndian.AppendUint16(buf, e.Src.Port())
	if fam == 4 {
		//ldlint:ignore escapecheck netip.As4 panic-message strings: only the impossible wrong-family panic path materializes them, the fam guard above keeps it unreachable
		a4 := dst.As4()
		buf = append(buf, a4[:]...)
	} else {
		a16 := dst.As16()
		buf = append(buf, a16[:]...)
	}
	buf = binary.BigEndian.AppendUint16(buf, e.Dst.Port())
	buf = append(buf, byte(e.Protocol))
	return append(buf, e.Message...)
}

// AddrPort aliases netip.AddrPort for the helper above.
type AddrPort = netip.AddrPort

// UnmarshalEntry decodes a record payload produced by MarshalEntry. The
// returned entry's Message aliases buf.
//
// (Written closure-free: a closure capturing the moving offset costs a
// heap allocation per record, which on the batch decode path was the
// single allocation per entry.)
//
//ldlint:noalloc
func UnmarshalEntry(buf []byte) (Entry, error) {
	if len(buf) < 8+1 {
		return Entry{}, errRecordShort
	}
	var e Entry
	e.Time = time.Unix(0, int64(binary.BigEndian.Uint64(buf)))
	fam := buf[8]
	if fam != 4 && fam != 16 {
		return Entry{}, errRecordFamily
	}
	addrLen := int(fam)
	need := 9 + 2*(addrLen+2) + 1
	if len(buf) < need {
		return Entry{}, errRecordShortAddrs
	}
	off := 9
	var src, dst netip.Addr
	if fam == 4 {
		src = netip.AddrFrom4([4]byte(buf[off : off+4]))
	} else {
		src = netip.AddrFrom16([16]byte(buf[off : off+16])).Unmap()
	}
	off += addrLen
	e.Src = netip.AddrPortFrom(src, binary.BigEndian.Uint16(buf[off:]))
	off += 2
	if fam == 4 {
		dst = netip.AddrFrom4([4]byte(buf[off : off+4]))
	} else {
		dst = netip.AddrFrom16([16]byte(buf[off : off+16])).Unmap()
	}
	off += addrLen
	e.Dst = netip.AddrPortFrom(dst, binary.BigEndian.Uint16(buf[off:]))
	off += 2
	e.Protocol = Protocol(buf[off])
	off++
	e.Message = buf[off:]
	return e, nil
}
