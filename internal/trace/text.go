package trace

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"strconv"
	"strings"
	"time"

	"ldplayer/internal/dnswire"
)

// The plain-text trace format (§2.5): one DNS message per line, columns
// separated by whitespace, editable with any text editor or awk:
//
//	<epoch.micros> <src ip:port> <dst ip:port> <proto> <id> <flags> <qname> <qclass> <qtype> <edns-size|-> <do|->
//
// Example:
//
//	1461234567.012345 192.168.1.1:5353 198.41.0.4:53 udp 4711 rd example.com. IN A 4096 do
//
// Flags is a +-joined subset of {rd,cd,ad,tc} or "-". The last two columns
// are "-" when the query carries no OPT record. Lines starting with '#'
// are comments.

// TextWriter writes entries as editable text lines.
type TextWriter struct {
	w *bufio.Writer
}

// NewTextWriter creates a TextWriter on w.
func NewTextWriter(w io.Writer) *TextWriter {
	return &TextWriter{w: bufio.NewWriter(w)}
}

// Write implements Writer.
func (t *TextWriter) Write(e Entry) error {
	var m dnswire.Message
	if err := m.Unpack(e.Message); err != nil {
		return fmt.Errorf("trace: text-encoding undecodable message: %w", err)
	}
	if len(m.Question) != 1 {
		return fmt.Errorf("trace: message has %d questions", len(m.Question))
	}
	q := m.Question[0]

	var flags []string
	if m.Header.RD {
		flags = append(flags, "rd")
	}
	if m.Header.CD {
		flags = append(flags, "cd")
	}
	if m.Header.AD {
		flags = append(flags, "ad")
	}
	if m.Header.TC {
		flags = append(flags, "tc")
	}
	flagStr := "-"
	if len(flags) > 0 {
		flagStr = strings.Join(flags, "+")
	}
	ednsStr, doStr := "-", "-"
	if m.Edns != nil {
		ednsStr = strconv.Itoa(int(m.Edns.UDPSize))
		if m.Edns.DO {
			doStr = "do"
		}
	}
	_, err := fmt.Fprintf(t.w, "%d.%06d %s %s %s %d %s %s %s %s %s %s\n",
		e.Time.Unix(), e.Time.Nanosecond()/1000,
		e.Src, e.Dst, e.Protocol, m.Header.ID, flagStr,
		q.Name, q.Class, q.Type, ednsStr, doStr)
	return err
}

// Flush flushes buffered output.
func (t *TextWriter) Flush() error { return t.w.Flush() }

// TextReader parses the text format back into entries, rebuilding wire
// messages from the parsed fields.
type TextReader struct {
	sc     *bufio.Scanner
	lineno int
}

// NewTextReader creates a TextReader on r.
func NewTextReader(r io.Reader) *TextReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return &TextReader{sc: sc}
}

// Next implements Reader.
func (t *TextReader) Next() (Entry, error) {
	for t.sc.Scan() {
		t.lineno++
		line := strings.TrimSpace(t.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		e, err := parseTextLine(line)
		if err != nil {
			return Entry{}, fmt.Errorf("trace: line %d: %w", t.lineno, err)
		}
		return e, nil
	}
	if err := t.sc.Err(); err != nil {
		return Entry{}, err
	}
	return Entry{}, io.EOF
}

func parseTextLine(line string) (Entry, error) {
	f := strings.Fields(line)
	if len(f) != 11 {
		return Entry{}, fmt.Errorf("expected 11 fields, got %d", len(f))
	}
	var e Entry

	secs, micros, ok := strings.Cut(f[0], ".")
	if !ok {
		return Entry{}, fmt.Errorf("bad timestamp %q", f[0])
	}
	sec, err1 := strconv.ParseInt(secs, 10, 64)
	usec, err2 := strconv.ParseInt(micros, 10, 64)
	if err1 != nil || err2 != nil || len(micros) != 6 {
		return Entry{}, fmt.Errorf("bad timestamp %q", f[0])
	}
	e.Time = time.Unix(sec, usec*1000)

	src, err := netip.ParseAddrPort(f[1])
	if err != nil {
		return Entry{}, fmt.Errorf("bad src %q: %v", f[1], err)
	}
	e.Src = src
	dst, err := netip.ParseAddrPort(f[2])
	if err != nil {
		return Entry{}, fmt.Errorf("bad dst %q: %v", f[2], err)
	}
	e.Dst = dst

	proto, ok := ParseProtocol(f[3])
	if !ok {
		return Entry{}, fmt.Errorf("bad protocol %q", f[3])
	}
	e.Protocol = proto

	id, err := strconv.ParseUint(f[4], 10, 16)
	if err != nil {
		return Entry{}, fmt.Errorf("bad id %q", f[4])
	}

	var m dnswire.Message
	m.Header.ID = uint16(id)
	if f[5] != "-" {
		for _, fl := range strings.Split(f[5], "+") {
			switch fl {
			case "rd":
				m.Header.RD = true
			case "cd":
				m.Header.CD = true
			case "ad":
				m.Header.AD = true
			case "tc":
				m.Header.TC = true
			default:
				return Entry{}, fmt.Errorf("bad flag %q", fl)
			}
		}
	}

	qclass, err := dnswire.ParseClass(f[7])
	if err != nil {
		return Entry{}, err
	}
	qtype, err := dnswire.ParseType(f[8])
	if err != nil {
		return Entry{}, err
	}
	if !dnswire.ValidName(f[6]) {
		return Entry{}, fmt.Errorf("bad qname %q", f[6])
	}
	m.Question = []dnswire.Question{{Name: dnswire.CanonicalName(f[6]), Class: qclass, Type: qtype}}

	if f[9] != "-" {
		size, err := strconv.ParseUint(f[9], 10, 16)
		if err != nil {
			return Entry{}, fmt.Errorf("bad edns size %q", f[9])
		}
		m.Edns = &dnswire.EDNS{UDPSize: uint16(size), DO: f[10] == "do"}
	} else if f[10] == "do" {
		return Entry{}, fmt.Errorf("do bit without EDNS")
	}

	wire, err := m.Pack(nil)
	if err != nil {
		return Entry{}, err
	}
	e.Message = wire
	return e, nil
}
