package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

// writeBlockFile is the test-side writer: entries → in-memory LDTRC02.
func writeBlockFile(t *testing.T, entries []Entry, opts BlockWriterOptions) []byte {
	t.Helper()
	data, err := WriteBlockTrace(entries, opts)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func readBlockFile(t *testing.T, data []byte) []Entry {
	t.Helper()
	br, err := NewBlockReaderAt(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()
	return drain(t, br)
}

func TestBlockRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts BlockWriterOptions
	}{
		{"raw-defaults", BlockWriterOptions{}},
		{"raw-tiny-blocks", BlockWriterOptions{BlockEntries: 7}},
		{"raw-byte-cut", BlockWriterOptions{BlockBytes: 256}},
		{"flate", BlockWriterOptions{Codec: BlockFlate}},
		{"flate-tiny-blocks", BlockWriterOptions{Codec: BlockFlate, BlockEntries: 5}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := manyEntries(t, 257)
			data := writeBlockFile(t, want, tc.opts)
			got := readBlockFile(t, data)
			if len(got) != len(want) {
				t.Fatalf("round trip produced %d entries, want %d", len(got), len(want))
			}
			for i := range got {
				assertEntriesEqual(t, i, got[i], want[i])
			}
		})
	}
}

func TestBlockRoundTripSampleEntries(t *testing.T) {
	want := sampleEntries(t)
	got := readBlockFile(t, writeBlockFile(t, want, BlockWriterOptions{}))
	if len(got) != len(want) {
		t.Fatalf("got %d entries, want %d", len(got), len(want))
	}
	for i := range got {
		assertEntriesEqual(t, i, got[i], want[i])
	}
}

// TestBlockRoundTripFile exercises the OpenBlockFile path — the mmap
// fast path on linux, ReaderAt elsewhere.
func TestBlockRoundTripFile(t *testing.T) {
	want := manyEntries(t, 500)
	data := writeBlockFile(t, want, BlockWriterOptions{BlockEntries: 64})
	path := filepath.Join(t.TempDir(), "trace.blk")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	br, err := OpenBlockFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, br)
	for i := range got {
		assertEntriesEqual(t, i, got[i], want[i])
	}
	if err := br.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := br.Next(); err == nil {
		t.Fatal("Next after Close should fail")
	}
}

// TestBlockBatchMatchesNext mirrors the LDTRC01 batch test: batched and
// per-entry reads of the same file must agree, with an awkward batch
// size that straddles block boundaries.
func TestBlockBatchMatchesNext(t *testing.T) {
	entries := manyEntries(t, 257)
	data := writeBlockFile(t, entries, BlockWriterOptions{BlockEntries: 50})
	want := readBlockFile(t, data)

	br, err := NewBlockReaderAt(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()
	var got []Entry
	batch := make([]Entry, 33)
	for {
		n, err := br.NextBatch(batch)
		got = append(got, batch[:n]...)
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			t.Fatal(err)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("batch decode produced %d entries, want %d", len(got), len(want))
	}
	for i := range got {
		assertEntriesEqual(t, i, got[i], want[i])
	}
}

// TestBlockScanFallback reads a file whose writer never reached Close:
// no footer index, so the reader must rebuild it by walking headers.
func TestBlockScanFallback(t *testing.T) {
	want := manyEntries(t, 100)
	var buf bytes.Buffer
	w := NewBlockWriterOptions(&buf, BlockWriterOptions{BlockEntries: 16})
	for _, e := range want {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil { // cuts the tail block, no footer
		t.Fatal(err)
	}
	got := readBlockFile(t, buf.Bytes())
	if len(got) != len(want) {
		t.Fatalf("scan fallback produced %d entries, want %d", len(got), len(want))
	}
	for i := range got {
		assertEntriesEqual(t, i, got[i], want[i])
	}
}

// TestBlockTruncatedTail chops a Close-less file mid-payload: the scan
// must report the torn block as io.ErrUnexpectedEOF, not silently drop
// it or panic.
func TestBlockTruncatedTail(t *testing.T) {
	var buf bytes.Buffer
	w := NewBlockWriterOptions(&buf, BlockWriterOptions{BlockEntries: 16})
	for _, e := range manyEntries(t, 64) {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{1, blockHeaderSize / 2, blockHeaderSize + 10} {
		data := full[:len(full)-cut]
		_, err := NewBlockReaderAt(bytes.NewReader(data), int64(len(data)))
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("truncating %d bytes: got %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

// TestBlockTruncatedWithStaleIndex corrupts the footer trailer of a
// complete file and verifies the scan fallback still reads everything.
func TestBlockTruncatedWithStaleIndex(t *testing.T) {
	want := manyEntries(t, 80)
	data := writeBlockFile(t, want, BlockWriterOptions{BlockEntries: 16})
	data[len(data)-1] ^= 0xff // break the trailer magic
	got := readBlockFile(t, data)
	if len(got) != len(want) {
		t.Fatalf("scan after trailer damage produced %d entries, want %d", len(got), len(want))
	}
}

// TestBlockIndexCRCDamage flips a byte inside the footer index body;
// the reader must notice (index CRC) and fall back to scanning.
func TestBlockIndexCRCDamage(t *testing.T) {
	want := manyEntries(t, 80)
	data := writeBlockFile(t, want, BlockWriterOptions{BlockEntries: 16})
	idxOff := int64(binary.BigEndian.Uint64(data[len(data)-blockTrailerSize:]))
	data[idxOff+6] ^= 0xff // inside the index body
	got := readBlockFile(t, data)
	if len(got) != len(want) {
		t.Fatalf("scan after index damage produced %d entries, want %d", len(got), len(want))
	}
}

// TestBlockPayloadCRCDamage flips one payload byte: the decode must
// fail with the CRC error, not produce garbage entries.
func TestBlockPayloadCRCDamage(t *testing.T) {
	data := writeBlockFile(t, manyEntries(t, 40), BlockWriterOptions{BlockEntries: 16})
	// First block payload starts right after magic + header.
	data[len(blockFileMagic)+blockHeaderSize+3] ^= 0xff
	br, err := NewBlockReaderAt(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()
	if _, err := br.Next(); !errors.Is(err, errBlockCRC) {
		t.Fatalf("got %v, want errBlockCRC", err)
	}
}

func TestBlockEmptyTrace(t *testing.T) {
	data := writeBlockFile(t, nil, BlockWriterOptions{})
	br, err := NewBlockReaderAt(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()
	if _, ok := br.TraceStart(); ok {
		t.Error("empty trace should have no TraceStart")
	}
	if _, err := br.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("got %v, want io.EOF", err)
	}
}

// TestBlockZeroEntryBlock hand-builds a file holding a legal zero-entry
// block between two real ones; the reader must skip it silently.
func TestBlockZeroEntryBlock(t *testing.T) {
	entries := manyEntries(t, 8)
	blockA := writeRawBlock(t, entries[:4])
	blockZ := writeRawBlock(t, nil)
	blockB := writeRawBlock(t, entries[4:])

	var file []byte
	file = append(file, blockFileMagic[:]...)
	var index []IndexEntry
	for _, blk := range [][]byte{blockA, blockZ, blockB} {
		h, err := ParseBlockHeader(blk)
		if err != nil {
			t.Fatal(err)
		}
		index = append(index, IndexEntry{Offset: int64(len(file)), Count: h.Count, FirstNano: h.FirstNano, LastNano: h.LastNano})
		file = append(file, blk...)
	}
	file = appendIndex(file, index, int64(len(file)))

	got := readBlockFile(t, file)
	if len(got) != len(entries) {
		t.Fatalf("got %d entries, want %d", len(got), len(entries))
	}
	for i := range got {
		assertEntriesEqual(t, i, got[i], entries[i])
	}
}

// writeRawBlock encodes entries as a single raw block (header+payload).
func writeRawBlock(t *testing.T, entries []Entry) []byte {
	t.Helper()
	if len(entries) == 0 {
		// Minimal legal payload: two empty dictionaries.
		payload := []byte{0, 0}
		hdr := BlockHeader{Codec: BlockRaw, RawLen: uint32(len(payload)), StoredLen: uint32(len(payload)), CRC: BlockCRC(payload)}
		return append(AppendBlockHeader(nil, hdr), payload...)
	}
	var buf bytes.Buffer
	w := NewBlockWriterOptions(&buf, BlockWriterOptions{BlockEntries: len(entries)})
	for _, e := range entries {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()[len(blockFileMagic):]
}

func TestBlockPartition(t *testing.T) {
	want := manyEntries(t, 300)
	data := writeBlockFile(t, want, BlockWriterOptions{BlockEntries: 10})
	br, err := NewBlockReaderAt(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()

	parts, ok := br.Partition(3)
	if !ok || len(parts) != 3 {
		t.Fatalf("Partition(3) = %d readers, ok=%v", len(parts), ok)
	}
	seen := make(map[string]int)
	total := 0
	for pi, p := range parts {
		sub := drain(t, p)
		total += len(sub)
		var prev time.Time
		for i, e := range sub {
			if i > 0 && e.Time.Before(prev) {
				t.Errorf("partition %d: entry %d out of order", pi, i)
			}
			prev = e.Time
			seen[string(e.Message)]++
		}
		if c, ok := p.(io.Closer); ok {
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if total != len(want) {
		t.Fatalf("partitions yielded %d entries, want %d", total, len(want))
	}
	for _, e := range want {
		if seen[string(e.Message)] != 1 {
			t.Fatalf("entry seen %d times, want exactly once", seen[string(e.Message)])
		}
	}
}

func TestBlockPartitionRefusals(t *testing.T) {
	data := writeBlockFile(t, manyEntries(t, 40), BlockWriterOptions{BlockEntries: 10})
	br, err := NewBlockReaderAt(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()
	if _, ok := br.Partition(1); ok {
		t.Error("Partition(1) should refuse")
	}
	if _, err := br.Next(); err != nil {
		t.Fatal(err)
	}
	if _, ok := br.Partition(2); ok {
		t.Error("Partition after a read should refuse")
	}

	br2, err := NewBlockReaderAt(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	defer br2.Close()
	if parts, ok := br2.Partition(2); ok {
		if _, ok := parts[0].(*BlockReader).Partition(2); ok {
			t.Error("re-partitioning a partition should refuse")
		}
		if _, ok := br2.Partition(2); ok {
			t.Error("double Partition should refuse")
		}
	} else {
		t.Fatal("Partition(2) refused")
	}
}

// TestBlockPartitionMoreThanBlocks asks for more partitions than blocks;
// the count is clamped, never zero-block partitions.
func TestBlockPartitionMoreThanBlocks(t *testing.T) {
	want := manyEntries(t, 30)
	data := writeBlockFile(t, want, BlockWriterOptions{BlockEntries: 10})
	br, err := NewBlockReaderAt(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()
	parts, ok := br.Partition(16)
	if !ok {
		t.Fatal("Partition(16) refused")
	}
	if len(parts) != 3 {
		t.Fatalf("got %d partitions, want 3 (clamped to block count)", len(parts))
	}
	total := 0
	for _, p := range parts {
		total += len(drain(t, p))
	}
	if total != len(want) {
		t.Fatalf("partitions yielded %d entries, want %d", total, len(want))
	}
}

func TestBlockTraceStart(t *testing.T) {
	want := manyEntries(t, 20)
	data := writeBlockFile(t, want, BlockWriterOptions{BlockEntries: 4})
	br, err := NewBlockReaderAt(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()
	t0, ok := br.TraceStart()
	if !ok || !t0.Equal(want[0].Time) {
		t.Fatalf("TraceStart = %v, %v; want %v, true", t0, ok, want[0].Time)
	}
	// Every partition reports the same epoch.
	parts, ok := br.Partition(2)
	if !ok {
		t.Fatal("Partition refused")
	}
	for i, p := range parts {
		pt, ok := p.(*BlockReader).TraceStart()
		if !ok || !pt.Equal(t0) {
			t.Errorf("partition %d TraceStart = %v, %v; want the file epoch", i, pt, ok)
		}
	}
}

// TestParseBlockHeaderHostile feeds headers a hostile writer could
// craft; every one must be rejected before any allocation happens.
func TestParseBlockHeaderHostile(t *testing.T) {
	base := BlockHeader{Codec: BlockRaw, Count: 10, RawLen: 100, StoredLen: 100}
	for _, tc := range []struct {
		name   string
		mutate func(*BlockHeader)
	}{
		{"codec", func(h *BlockHeader) { h.Codec = 9 }},
		{"count-overflow", func(h *BlockHeader) { h.Count = MaxBlockEntries + 1 }},
		{"rawlen-overflow", func(h *BlockHeader) { h.RawLen = maxBlockRaw + 1; h.StoredLen = h.RawLen }},
		{"storedlen-overflow", func(h *BlockHeader) { h.Codec = BlockFlate; h.StoredLen = maxBlockStored + 1 }},
		{"raw-len-mismatch", func(h *BlockHeader) { h.StoredLen = h.RawLen + 1 }},
		{"count-vs-rawlen", func(h *BlockHeader) { h.Count = 1000; h.RawLen = 100; h.StoredLen = 100 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			h := base
			tc.mutate(&h)
			if _, err := ParseBlockHeader(AppendBlockHeader(nil, h)); err == nil {
				t.Error("hostile header accepted")
			}
		})
	}
	// The untouched base must parse, or the cases above prove nothing.
	if _, err := ParseBlockHeader(AppendBlockHeader(nil, base)); err != nil {
		t.Fatalf("benign header rejected: %v", err)
	}
	// Bad magic and short buffers.
	buf := AppendBlockHeader(nil, base)
	buf[0] ^= 0xff
	if _, err := ParseBlockHeader(buf); !errors.Is(err, errBlockMagic) {
		t.Errorf("got %v, want errBlockMagic", err)
	}
	if _, err := ParseBlockHeader(buf[:blockHeaderSize-1]); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("got %v, want io.ErrUnexpectedEOF", err)
	}
}

// TestDecodeBlockHostilePayloads runs structurally hostile payloads
// through DecodeBlock: each must error, never panic.
func TestDecodeBlockHostilePayloads(t *testing.T) {
	mk := func(payload []byte, count uint32) (BlockHeader, []byte) {
		return BlockHeader{
			Codec: BlockRaw, Count: count,
			RawLen: uint32(len(payload)), StoredLen: uint32(len(payload)),
			CRC: BlockCRC(payload),
		}, payload
	}
	for _, tc := range []struct {
		name    string
		payload []byte
		count   uint32
	}{
		{"empty-payload-with-count", make([]byte, 5*3), 3},
		{"dict-idx-out-of-range", append([]byte{1, 4, 10, 0, 0, 1, 0, 53, 1, 4, 10, 0, 0, 2, 0, 53}, 7, 0, 0, 0, 0), 1},
		{"truncated-dict", []byte{5, 4, 10}, 1},
		{"bad-family", []byte{1, 9, 1, 2, 3, 4, 0, 53}, 1},
		{"msg-len-past-blob", append([]byte{1, 4, 10, 0, 0, 1, 0, 53, 1, 4, 10, 0, 0, 2, 0, 53}, 0, 0, 0, 0, 100), 1},
		{"negative-msg-len", append([]byte{1, 4, 10, 0, 0, 1, 0, 53, 1, 4, 10, 0, 0, 2, 0, 53}, 0, 0, 0, 0, 1), 1},
		{"bad-proto", append([]byte{1, 4, 10, 0, 0, 1, 0, 53, 1, 4, 10, 0, 0, 2, 0, 53}, 0, 0, 9, 0, 0), 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			hdr, payload := mk(tc.payload, tc.count)
			if hdr.Count > 0 && uint64(hdr.RawLen) < uint64(hdr.Count)*minBytesPerEntry {
				// Pad so the header clears its own bounds check and the
				// column parser is what gets exercised.
				pad := make([]byte, hdr.Count*minBytesPerEntry)
				copy(pad, payload)
				hdr, payload = mk(pad, tc.count)
			}
			if _, err := DecodeBlock(hdr, payload, nil); err == nil {
				t.Error("hostile payload decoded without error")
			}
		})
	}
}

// TestDecodeBlockFlateHostile covers the compressed-path hostile cases:
// garbage DEFLATE bytes, and a stream that inflates beyond RawLen.
func TestDecodeBlockFlateHostile(t *testing.T) {
	garbage := []byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02}
	hdr := BlockHeader{Codec: BlockFlate, Count: 0, RawLen: 2, StoredLen: uint32(len(garbage)), CRC: BlockCRC(garbage)}
	if _, err := DecodeBlock(hdr, garbage, nil); err == nil {
		t.Error("garbage flate stream decoded without error")
	}

	// Compress a real payload, then lie about RawLen (smaller than the
	// true inflated size): the trailing-read check must catch it.
	entries := sampleEntries(t)
	data := writeBlockFile(t, entries, BlockWriterOptions{Codec: BlockFlate})
	h, err := ParseBlockHeader(data[len(blockFileMagic):])
	if err != nil {
		t.Fatal(err)
	}
	if h.Codec != BlockFlate {
		t.Skip("sample block stored raw (incompressible)")
	}
	stored := data[len(blockFileMagic)+blockHeaderSize : len(blockFileMagic)+blockHeaderSize+int(h.StoredLen)]
	h.RawLen -= 10
	h.Count = 0 // keep count×minBytes below the shrunken RawLen
	if _, err := DecodeBlock(h, stored, nil); err == nil {
		t.Error("flate stream longer than RawLen decoded without error")
	}
}

// TestBlockReaderAllocsPerEntry guards the zero-copy read path: steady-
// state ingestion must stay well under one allocation per entry (the
// budget pays only for per-block slabs and pipeline plumbing).
func TestBlockReaderAllocsPerEntry(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const n = 20000
	entries := manyEntries(t, n)
	data := writeBlockFile(t, entries, BlockWriterOptions{})
	br, err := NewBlockReaderAt(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()
	batch := make([]Entry, 512)
	// Prime the pipeline (worker spin-up allocates once).
	if _, err := br.NextBatch(batch); err != nil {
		t.Fatal(err)
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	read := 0
	for {
		k, err := br.NextBatch(batch)
		read += k
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			t.Fatal(err)
		}
	}
	runtime.ReadMemStats(&after)
	if read == 0 {
		t.Fatal("no entries read")
	}
	perEntry := float64(after.Mallocs-before.Mallocs) / float64(read)
	if perEntry > 0.1 {
		t.Errorf("block ingestion allocates %.3f objects/entry, want <= 0.1", perEntry)
	}
}

// TestBlockFlateCompresses checks the archival codec actually shrinks a
// repetitive trace versus both raw blocks and the LDTRC01 stream.
func TestBlockFlateCompresses(t *testing.T) {
	entries := manyEntries(t, 2000)
	flate := writeBlockFile(t, entries, BlockWriterOptions{Codec: BlockFlate})
	raw := writeBlockFile(t, entries, BlockWriterOptions{})
	var v1 bytes.Buffer
	w := NewBinaryWriter(&v1)
	for _, e := range entries {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(flate) >= len(raw) {
		t.Errorf("flate file (%d B) not smaller than raw (%d B)", len(flate), len(raw))
	}
	if len(raw) >= v1.Len() {
		t.Errorf("raw block file (%d B) not smaller than LDTRC01 (%d B)", len(raw), v1.Len())
	}
	t.Logf("LDTRC01 %d B, raw blocks %d B, flate blocks %d B (%.1fx)",
		v1.Len(), len(raw), len(flate), float64(v1.Len())/float64(len(flate)))
}

func TestBlockEntriesAndBlocks(t *testing.T) {
	data := writeBlockFile(t, manyEntries(t, 100), BlockWriterOptions{BlockEntries: 30})
	br, err := NewBlockReaderAt(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()
	if got := br.Entries(); got != 100 {
		t.Errorf("Entries() = %d, want 100", got)
	}
	if got := len(br.Blocks()); got != 4 {
		t.Errorf("Blocks() = %d blocks, want 4", got)
	}
}
