package trace

import (
	"bytes"
	"fmt"
	"io"
	"testing"
	"time"

	"ldplayer/internal/dnswire"
)

// manyEntries builds n distinct entries for batch-decode tests.
func manyEntries(t *testing.T, n int) []Entry {
	t.Helper()
	base := time.Unix(1461234567, 0)
	out := make([]Entry, n)
	for i := range out {
		out[i] = queryEntry(t, base.Add(time.Duration(i)*time.Millisecond),
			fmt.Sprintf("10.0.%d.%d:5353", i/256, i%256), "198.41.0.4:53",
			Protocol(i%3), fmt.Sprintf("q%d.example.com.", i), dnswire.TypeA, nil)
	}
	return out
}

// TestBinaryBatchDecodeMatchesNext decodes one stream twice — per-entry
// and batched with an awkward batch size — and requires identical output.
func TestBinaryBatchDecodeMatchesNext(t *testing.T) {
	entries := manyEntries(t, 257)
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	for _, e := range entries {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	stream := buf.Bytes()

	want := drain(t, NewBinaryReader(bytes.NewReader(stream)))

	br := NewBinaryReader(bytes.NewReader(stream))
	var got []Entry
	batch := make([]Entry, 33) // deliberately not a divisor of 257
	for {
		n, err := br.NextBatch(batch)
		got = append(got, batch[:n]...)
		if err != nil {
			if err == io.EOF {
				break
			}
			t.Fatal(err)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("batch decode produced %d entries, want %d", len(got), len(want))
	}
	for i := range got {
		assertEntriesEqual(t, i, got[i], want[i])
	}
}

// TestReadBatchFallback exercises the per-entry fallback for readers
// without a batch path and the batch path of SliceReader.
func TestReadBatchFallback(t *testing.T) {
	entries := manyEntries(t, 10)

	// SliceReader implements BatchReader directly.
	sr := NewSliceReader(entries)
	dst := make([]Entry, 4)
	var total int
	for {
		n, err := ReadBatch(sr, dst)
		total += n
		if err != nil {
			if err == io.EOF {
				break
			}
			t.Fatal(err)
		}
	}
	if total != 10 {
		t.Errorf("SliceReader batches yielded %d entries, want 10", total)
	}

	// A plain Reader goes through the Next fallback.
	plain := struct{ Reader }{NewSliceReader(entries)}
	total = 0
	for {
		n, err := ReadBatch(plain, dst)
		total += n
		if err != nil {
			if err == io.EOF {
				break
			}
			t.Fatal(err)
		}
	}
	if total != 10 {
		t.Errorf("fallback batches yielded %d entries, want 10", total)
	}
}

func assertEntriesEqual(t *testing.T, i int, got, want Entry) {
	t.Helper()
	if !got.Time.Equal(want.Time) || got.Src != want.Src || got.Dst != want.Dst ||
		got.Protocol != want.Protocol || !bytes.Equal(got.Message, want.Message) {
		t.Errorf("entry %d mismatch:\n got %+v\nwant %+v", i, got, want)
	}
}
