package trace

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"testing"
	"testing/iotest"
	"time"

	"ldplayer/internal/dnswire"
)

// manyEntries builds n distinct entries for batch-decode tests.
func manyEntries(t *testing.T, n int) []Entry {
	t.Helper()
	base := time.Unix(1461234567, 0)
	out := make([]Entry, n)
	for i := range out {
		out[i] = queryEntry(t, base.Add(time.Duration(i)*time.Millisecond),
			fmt.Sprintf("10.0.%d.%d:5353", i/256, i%256), "198.41.0.4:53",
			Protocol(i%3), fmt.Sprintf("q%d.example.com.", i), dnswire.TypeA, nil)
	}
	return out
}

// TestBinaryBatchDecodeMatchesNext decodes one stream twice — per-entry
// and batched with an awkward batch size — and requires identical output.
func TestBinaryBatchDecodeMatchesNext(t *testing.T) {
	entries := manyEntries(t, 257)
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	for _, e := range entries {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	stream := buf.Bytes()

	want := drain(t, NewBinaryReader(bytes.NewReader(stream)))

	br := NewBinaryReader(bytes.NewReader(stream))
	var got []Entry
	batch := make([]Entry, 33) // deliberately not a divisor of 257
	for {
		n, err := br.NextBatch(batch)
		got = append(got, batch[:n]...)
		if err != nil {
			if err == io.EOF {
				break
			}
			t.Fatal(err)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("batch decode produced %d entries, want %d", len(got), len(want))
	}
	for i := range got {
		assertEntriesEqual(t, i, got[i], want[i])
	}
}

// TestReadBatchFallback exercises the per-entry fallback for readers
// without a batch path and the batch path of SliceReader.
func TestReadBatchFallback(t *testing.T) {
	entries := manyEntries(t, 10)

	// SliceReader implements BatchReader directly.
	sr := NewSliceReader(entries)
	dst := make([]Entry, 4)
	var total int
	for {
		n, err := ReadBatch(sr, dst)
		total += n
		if err != nil {
			if err == io.EOF {
				break
			}
			t.Fatal(err)
		}
	}
	if total != 10 {
		t.Errorf("SliceReader batches yielded %d entries, want 10", total)
	}

	// A plain Reader goes through the Next fallback.
	plain := struct{ Reader }{NewSliceReader(entries)}
	total = 0
	for {
		n, err := ReadBatch(plain, dst)
		total += n
		if err != nil {
			if err == io.EOF {
				break
			}
			t.Fatal(err)
		}
	}
	if total != 10 {
		t.Errorf("fallback batches yielded %d entries, want 10", total)
	}
}

// binaryStream encodes entries as an LDTRC01 byte stream.
func binaryStream(t *testing.T, entries []Entry) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	for _, e := range entries {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBinaryBatchTruncatedTail cuts the stream at several hostile
// points: NextBatch must return every complete record and then a
// non-EOF error (mid-record truncation is corruption, not end of
// stream), except a cut between records, which is a clean EOF.
func TestBinaryBatchTruncatedTail(t *testing.T) {
	entries := manyEntries(t, 20)
	stream := binaryStream(t, entries)
	// Walk the length prefixes to find the last record's exact boundary
	// (records vary in size with the query name).
	lastStart := 8
	for off := 8; off < len(stream); {
		n := int(binary.BigEndian.Uint32(stream[off:]))
		lastStart = off
		off += 4 + n
	}

	cuts := []struct {
		name     string
		cut      int
		complete int
		wantEOF  bool
	}{
		{"mid-payload", (lastStart + len(stream)) / 2, 19, false},
		{"mid-length-header", lastStart + 2, 19, false},
		{"between-records", lastStart, 19, true},
		{"inside-magic", 5, 0, false},
	}
	for _, c := range cuts {
		t.Run(c.name, func(t *testing.T) {
			br := NewBinaryReader(bytes.NewReader(stream[:c.cut]))
			got := 0
			var err error
			batch := make([]Entry, 7)
			for {
				var n int
				n, err = br.NextBatch(batch)
				got += n
				if err != nil {
					break
				}
			}
			if got != c.complete {
				t.Errorf("decoded %d complete records, want %d", got, c.complete)
			}
			if c.wantEOF {
				if err != io.EOF {
					t.Errorf("err = %v, want io.EOF", err)
				}
			} else if err == nil || err == io.EOF {
				t.Errorf("err = %v, want a truncation error", err)
			}
		})
	}
}

// TestBinaryBatchZeroAndOversized: a zero-length dst must not consume
// records, and a batch larger than the stream returns the short count
// with the EOF surfaced on the following call.
func TestBinaryBatchZeroAndOversized(t *testing.T) {
	entries := manyEntries(t, 5)
	br := NewBinaryReader(bytes.NewReader(binaryStream(t, entries)))

	if n, err := br.NextBatch(nil); n != 0 || err != nil {
		t.Fatalf("NextBatch(nil) = %d, %v", n, err)
	}
	batch := make([]Entry, 64)
	n, err := br.NextBatch(batch)
	if n != 5 || err != nil {
		t.Fatalf("oversized batch = %d, %v; want 5, nil", n, err)
	}
	for i := 0; i < 5; i++ {
		assertEntriesEqual(t, i, batch[i], entries[i])
	}
	if n, err := br.NextBatch(batch); n != 0 || err != io.EOF {
		t.Fatalf("after EOF: %d, %v", n, err)
	}
}

// TestBinaryBatchPartialReads drives NextBatch through a reader that
// yields one byte at a time — every io.ReadFull boundary in the decoder
// gets exercised.
func TestBinaryBatchPartialReads(t *testing.T) {
	entries := manyEntries(t, 30)
	stream := binaryStream(t, entries)
	br := NewBinaryReader(iotest.OneByteReader(bytes.NewReader(stream)))
	var got []Entry
	batch := make([]Entry, 11)
	for {
		n, err := br.NextBatch(batch)
		got = append(got, batch[:n]...)
		if err != nil {
			if err == io.EOF {
				break
			}
			t.Fatal(err)
		}
	}
	if len(got) != len(entries) {
		t.Fatalf("decoded %d entries, want %d", len(got), len(entries))
	}
	for i := range got {
		assertEntriesEqual(t, i, got[i], entries[i])
	}
}

// TestBinaryBatchAllocs guards the slab-carving batch path: amortized
// allocations must stay an order of magnitude under one per entry.
func TestBinaryBatchAllocs(t *testing.T) {
	entries := manyEntries(t, 2000)
	stream := binaryStream(t, entries)
	batch := make([]Entry, 256)
	allocs := testing.AllocsPerRun(5, func() {
		br := NewBinaryReader(bytes.NewReader(stream))
		for {
			n, err := br.NextBatch(batch)
			if err != nil {
				if err == io.EOF {
					break
				}
				t.Fatal(err)
			}
			if n == 0 {
				break
			}
		}
	})
	perEntry := allocs / float64(len(entries))
	if perEntry > 0.1 {
		t.Errorf("binary batch decode allocates %.3f/entry (%.0f total), want <= 0.1", perEntry, allocs)
	}
}

func assertEntriesEqual(t *testing.T, i int, got, want Entry) {
	t.Helper()
	if !got.Time.Equal(want.Time) || got.Src != want.Src || got.Dst != want.Dst ||
		got.Protocol != want.Protocol || !bytes.Equal(got.Message, want.Message) {
		t.Errorf("entry %d mismatch:\n got %+v\nwant %+v", i, got, want)
	}
}
