//go:build !linux

package trace

import "os"

// mmapFile reports no mapping on platforms without the linux fast
// path; the block reader falls back to io.ReaderAt block reads.
func mmapFile(f *os.File, size int64) ([]byte, bool) { return nil, false }

func munmapFile(data []byte) error { return nil }
