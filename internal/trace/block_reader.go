package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"
)

// BlockReader reads LDTRC02 block traces. It implements Reader,
// BatchReader, and Partitioner.
//
// Ingestion is a parallel pipeline: a dispatcher walks the block index
// in order and fans block-decode jobs out to a worker pool; workers
// CRC-check and decode blocks (several in flight, prefetching ahead of
// whatever paces the consumer — the replay timing wheel on the paced
// path); the consumer end re-merges results strictly in index order, so
// NextBatch yields entries in exactly the order the file stores them —
// global timestamp order for any writer-produced file, regardless of
// how many workers raced on the decode.
//
// Zero-copy aliasing contract: entries' Message fields alias decode
// slabs — the mmap itself for raw blocks on linux, per-block inflate or
// read buffers otherwise. Those backing bytes are immutable and are
// never recycled while the reader is open, which is what the
// Entry.Message contract requires; Close unmaps the file, so callers
// must not touch any yielded Message after Close. (The replay engine
// closes its reader only after every socket is shut down.)
type BlockReader struct {
	src *blockSource
	// blocks is the subset of the file index this reader owns (the full
	// index for an unpartitioned reader).
	blocks []IndexEntry
	// fileFirstNano is the whole file's first timestamp (not the
	// partition's): every partition paces against the same trace epoch.
	fileFirstNano int64
	hasEntries    bool

	opts BlockReaderOptions

	startOnce sync.Once
	ordered   chan *blockJob
	quit      chan struct{}
	closeOnce sync.Once

	partitioned bool

	cur    []Entry
	curPos int
	err    error
}

// blockSource is the shared byte source behind a reader and all of its
// partitions: an mmap when the platform provides one, otherwise an
// io.ReaderAt. The opening reader owns f/mmap; partitions borrow.
type blockSource struct {
	ra   io.ReaderAt
	size int64
	mmap []byte // nil on the portable path
	f    *os.File
}

// blockBytes returns the stored bytes of block b: a subslice of the
// mmap on the fast path (zero copies, zero syscalls), or a fresh
// buffer read via ReadAt otherwise.
func (s *blockSource) blockBytes(off int64, n uint32) ([]byte, error) {
	if off < 0 || int64(n) > s.size-off {
		return nil, io.ErrUnexpectedEOF
	}
	if s.mmap != nil {
		return s.mmap[off : off+int64(n) : off+int64(n)], nil
	}
	buf := make([]byte, n)
	if _, err := s.ra.ReadAt(buf, off); err != nil {
		return nil, err
	}
	return buf, nil
}

func (s *blockSource) close() error {
	var err error
	if s.mmap != nil {
		err = munmapFile(s.mmap)
		s.mmap = nil
	}
	if s.f != nil {
		if cerr := s.f.Close(); err == nil {
			err = cerr
		}
		s.f = nil
	}
	return err
}

// BlockReaderOptions shape a BlockReader.
type BlockReaderOptions struct {
	// Workers is the decode worker count (default min(GOMAXPROCS, 8)).
	Workers int
	// Prefetch is how many decoded blocks may sit ahead of the consumer
	// (default Workers + 2). Each buffered block pins its slab, so this
	// bounds memory to roughly Prefetch × block raw size.
	Prefetch int
}

func (o *BlockReaderOptions) defaults() {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
		if o.Workers > 8 {
			o.Workers = 8
		}
	}
	if o.Prefetch <= 0 {
		o.Prefetch = o.Workers + 2
	}
}

// blockJob is one block's decode future: the dispatcher queues it to a
// worker and (in file order) to the ordered channel; the consumer waits
// on done.
type blockJob struct {
	idx     IndexEntry
	entries []Entry
	err     error
	done    chan struct{}
}

// OpenBlockFile opens path as an LDTRC02 block trace: mmap on linux,
// ReaderAt fallback elsewhere. Close releases the mapping — see the
// aliasing contract on BlockReader.
func OpenBlockFile(path string) (*BlockReader, error) {
	return OpenBlockFileOptions(path, BlockReaderOptions{})
}

// OpenBlockFileOptions opens path with explicit reader options.
func OpenBlockFileOptions(path string, opts BlockReaderOptions) (*BlockReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	src := &blockSource{ra: f, size: st.Size(), f: f}
	if m, ok := mmapFile(f, st.Size()); ok {
		src.mmap = m
	}
	br, err := newBlockReader(src, opts)
	if err != nil {
		src.close()
		return nil, err
	}
	return br, nil
}

// NewBlockReaderAt reads a block trace from any io.ReaderAt (tests, in-
// memory traces, seekable network blobs).
func NewBlockReaderAt(ra io.ReaderAt, size int64) (*BlockReader, error) {
	return newBlockReader(&blockSource{ra: ra, size: size}, BlockReaderOptions{})
}

func newBlockReader(src *blockSource, opts BlockReaderOptions) (*BlockReader, error) {
	opts.defaults()
	var magic [8]byte
	if src.size < int64(len(magic)) {
		return nil, io.ErrUnexpectedEOF
	}
	if err := readFullAt(src, magic[:], 0); err != nil {
		return nil, err
	}
	if magic != blockFileMagic {
		return nil, fmt.Errorf("trace: bad block-trace magic %q", magic[:])
	}
	index, err := loadIndex(src)
	if err != nil {
		return nil, err
	}
	br := &BlockReader{src: src, blocks: index, opts: opts}
	for _, b := range index {
		if b.Count > 0 {
			br.fileFirstNano = b.FirstNano
			br.hasEntries = true
			break
		}
	}
	return br, nil
}

func readFullAt(src *blockSource, buf []byte, off int64) error {
	if src.mmap != nil {
		if off < 0 || int64(len(buf)) > src.size-off {
			return io.ErrUnexpectedEOF
		}
		copy(buf, src.mmap[off:])
		return nil
	}
	_, err := src.ra.ReadAt(buf, off)
	return err
}

// loadIndex reads the footer index, falling back to a header-chain scan
// when the trailer is missing or damaged (e.g. a writer that never
// reached Close). A scan that runs into a torn block reports the
// truncation instead of silently dropping the tail.
func loadIndex(src *blockSource) ([]IndexEntry, error) {
	if idx, ok := loadFooterIndex(src); ok {
		return idx, nil
	}
	return scanIndex(src)
}

// loadFooterIndex attempts the trailer path; ok=false falls back to a
// scan.
func loadFooterIndex(src *blockSource) ([]IndexEntry, bool) {
	if src.size < int64(len(blockFileMagic)+blockTrailerSize) {
		return nil, false
	}
	var tr [blockTrailerSize]byte
	if err := readFullAt(src, tr[:], src.size-blockTrailerSize); err != nil {
		return nil, false
	}
	if [8]byte(tr[8:16]) != blockTrailer {
		return nil, false
	}
	off := int64(binary.BigEndian.Uint64(tr[:8]))
	if off < int64(len(blockFileMagic)) || off >= src.size-blockTrailerSize {
		return nil, false
	}
	buf := make([]byte, src.size-blockTrailerSize-off)
	if err := readFullAt(src, buf, off); err != nil {
		return nil, false
	}
	idx, err := parseIndex(buf)
	if err != nil {
		return nil, false
	}
	// Sanity: offsets must be in range and ascending, or the index is
	// hostile and the scan decides.
	prev := int64(len(blockFileMagic)) - 1
	for _, b := range idx {
		if b.Offset <= prev || b.Offset+blockHeaderSize > src.size {
			return nil, false
		}
		prev = b.Offset
	}
	return idx, true
}

// scanIndex rebuilds the index by walking block headers front to back.
func scanIndex(src *blockSource) ([]IndexEntry, error) {
	var idx []IndexEntry
	off := int64(len(blockFileMagic))
	var hdr [blockHeaderSize]byte
	for off < src.size {
		remaining := src.size - off
		// The index magic (or a clean EOF) terminates the chain.
		if remaining >= 4 {
			var m [4]byte
			if err := readFullAt(src, m[:], off); err != nil {
				return nil, err
			}
			if binary.BigEndian.Uint32(m[:]) == indexMagic {
				return idx, nil
			}
		}
		if remaining < blockHeaderSize {
			return nil, fmt.Errorf("trace: truncated block header at offset %d: %w", off, io.ErrUnexpectedEOF)
		}
		if err := readFullAt(src, hdr[:], off); err != nil {
			return nil, err
		}
		h, err := ParseBlockHeader(hdr[:])
		if err != nil {
			return nil, fmt.Errorf("trace: block at offset %d: %w", off, err)
		}
		if int64(h.StoredLen) > src.size-off-blockHeaderSize {
			return nil, fmt.Errorf("trace: truncated block payload at offset %d: %w", off, io.ErrUnexpectedEOF)
		}
		idx = append(idx, IndexEntry{Offset: off, Count: h.Count, FirstNano: h.FirstNano, LastNano: h.LastNano})
		off += blockHeaderSize + int64(h.StoredLen)
	}
	return idx, nil
}

// TraceStart reports the file's first entry timestamp — the global
// replay epoch, identical across partitions, so sharded replays pace
// against one synchronization point.
func (br *BlockReader) TraceStart() (t0 time.Time, ok bool) {
	if !br.hasEntries {
		return time.Time{}, false
	}
	return time.Unix(0, br.fileFirstNano), true
}

// Blocks reports the reader's block index (its own partition's subset).
func (br *BlockReader) Blocks() []IndexEntry { return br.blocks }

// Entries reports the total entry count across the reader's blocks.
func (br *BlockReader) Entries() int64 {
	var n int64
	for _, b := range br.blocks {
		n += int64(b.Count)
	}
	return n
}

// Partition splits the reader into n sub-readers over disjoint,
// round-robin interleaved subsets of its blocks. Each partition yields
// its blocks in file order (so per-partition timestamps stay
// monotonic), shares the parent's mapping, and runs its own decode
// pipeline. Valid only before any read; afterwards, or for n <= 1, it
// reports ok=false and the caller should read sequentially. The parent
// must stay un-read and must be Closed only after every partition is
// done (Close on a partition releases just its pipeline).
func (br *BlockReader) Partition(n int) ([]Reader, bool) {
	if n <= 1 || br.partitioned || br.cur != nil || br.ordered != nil || len(br.blocks) == 0 {
		return nil, false
	}
	br.partitioned = true
	if n > len(br.blocks) {
		n = len(br.blocks)
	}
	parts := make([]Reader, n)
	for i := 0; i < n; i++ {
		sub := make([]IndexEntry, 0, len(br.blocks)/n+1)
		for j := i; j < len(br.blocks); j += n {
			sub = append(sub, br.blocks[j])
		}
		parts[i] = &BlockReader{
			src:           &blockSource{ra: br.src.ra, size: br.src.size, mmap: br.src.mmap},
			blocks:        sub,
			fileFirstNano: br.fileFirstNano,
			hasEntries:    br.hasEntries,
			opts:          br.opts,
			partitioned:   true, // borrows the mapping; Close won't unmap
		}
	}
	return parts, true
}

// start spins up the decode pipeline on first read.
func (br *BlockReader) start() {
	br.ordered = make(chan *blockJob, br.opts.Prefetch)
	br.quit = make(chan struct{})
	jobs := make(chan *blockJob)
	for i := 0; i < br.opts.Workers; i++ {
		go br.worker(jobs)
	}
	go func() {
		defer close(br.ordered)
		defer close(jobs)
		for _, b := range br.blocks {
			job := &blockJob{idx: b, done: make(chan struct{})}
			select {
			case jobs <- job:
			case <-br.quit:
				return
			}
			select {
			case br.ordered <- job:
			case <-br.quit:
				return
			}
		}
	}()
}

// worker decodes blocks until the job channel closes.
func (br *BlockReader) worker(jobs <-chan *blockJob) {
	var hdr [blockHeaderSize]byte
	for job := range jobs {
		job.entries, job.err = br.decodeOne(job.idx, hdr[:])
		close(job.done)
	}
}

// decodeOne reads and decodes one block.
func (br *BlockReader) decodeOne(b IndexEntry, hdrBuf []byte) ([]Entry, error) {
	if err := readFullAt(br.src, hdrBuf, b.Offset); err != nil {
		return nil, err
	}
	hdr, err := ParseBlockHeader(hdrBuf)
	if err != nil {
		return nil, err
	}
	if hdr.Count != b.Count {
		return nil, fmt.Errorf("trace: block at offset %d disagrees with index (%d vs %d entries)", b.Offset, hdr.Count, b.Count)
	}
	stored, err := br.src.blockBytes(b.Offset+blockHeaderSize, hdr.StoredLen)
	if err != nil {
		return nil, err
	}
	return DecodeBlock(hdr, stored, nil)
}

// nextBlock advances cur to the next decoded block, in file order.
func (br *BlockReader) nextBlock() error {
	if br.err != nil {
		return br.err
	}
	//ldlint:ignore noallocprop one-time decode-pipeline start under sync.Once; steady-state reads recycle decoded blocks
	br.startOnce.Do(br.start)
	for {
		job, ok := <-br.ordered
		if !ok {
			br.err = io.EOF
			return io.EOF
		}
		<-job.done
		if job.err != nil {
			br.err = job.err
			return job.err
		}
		if len(job.entries) == 0 {
			continue // zero-entry block: legal, yields nothing
		}
		br.cur = job.entries
		br.curPos = 0
		return nil
	}
}

// Next implements Reader.
func (br *BlockReader) Next() (Entry, error) {
	for br.curPos >= len(br.cur) {
		if err := br.nextBlock(); err != nil {
			return Entry{}, err
		}
	}
	e := br.cur[br.curPos]
	br.curPos++
	return e, nil
}

// NextBatch implements BatchReader: it copies entry views (not message
// bytes) out of the current decoded block. Message fields alias the
// reader's slabs per the zero-copy contract.
//
//ldlint:noalloc
func (br *BlockReader) NextBatch(dst []Entry) (int, error) {
	for br.curPos >= len(br.cur) {
		if err := br.nextBlock(); err != nil {
			return 0, err
		}
	}
	n := copy(dst, br.cur[br.curPos:])
	br.curPos += n
	return n, nil
}

// Close shuts the decode pipeline down and, for the reader that owns
// the file (not partitions), unmaps/closes it. After Close no Entry
// yielded by this reader (or, for an owner, its partitions) may be
// used.
func (br *BlockReader) Close() error {
	br.closeOnce.Do(func() {
		if br.ordered != nil {
			close(br.quit)
			// Drain so every in-flight worker finishes before the mapping
			// can go away.
			for job := range br.ordered {
				<-job.done
			}
		}
		if br.err == nil {
			br.err = errors.New("trace: block reader closed")
		}
	})
	if br.partitioned && br.src.f == nil {
		return nil // borrower: owner unmaps
	}
	return br.src.close()
}

// in-memory block trace helpers (tests and benches).

// WriteBlockTrace encodes entries as an in-memory LDTRC02 file.
func WriteBlockTrace(entries []Entry, opts BlockWriterOptions) ([]byte, error) {
	var buf bytes.Buffer
	w := NewBlockWriterOptions(&buf, opts)
	for _, e := range entries {
		if err := w.Write(e); err != nil {
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
