package trace

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"ldplayer/internal/dnswire"
)

func queryEntry(t *testing.T, at time.Time, src, dst string, proto Protocol, name string, qt dnswire.Type, edns *dnswire.EDNS) Entry {
	t.Helper()
	m := dnswire.NewQuery(uint16(len(name)*7+1), name, qt)
	m.Edns = edns
	wire, err := m.Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	return Entry{
		Time:     at,
		Src:      netip.MustParseAddrPort(src),
		Dst:      netip.MustParseAddrPort(dst),
		Protocol: proto,
		Message:  wire,
	}
}

func sampleEntries(t *testing.T) []Entry {
	t.Helper()
	base := time.Unix(1461234567, 12345000)
	return []Entry{
		queryEntry(t, base, "192.168.1.1:5353", "198.41.0.4:53", UDP, "example.com.", dnswire.TypeA, nil),
		queryEntry(t, base.Add(137*time.Microsecond), "192.168.1.2:40000", "198.41.0.4:53", TCP, "www.iana.org.", dnswire.TypeAAAA,
			&dnswire.EDNS{UDPSize: 4096, DO: true}),
		queryEntry(t, base.Add(2*time.Second), "10.0.0.9:1024", "192.5.6.30:53", TLS, "mail.google.com.", dnswire.TypeMX,
			&dnswire.EDNS{UDPSize: 1232}),
	}
}

func drain(t *testing.T, r Reader) []Entry {
	t.Helper()
	out, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func entriesEquivalent(t *testing.T, a, b Entry) {
	t.Helper()
	if !a.Time.Equal(b.Time) {
		t.Errorf("time %v != %v", a.Time, b.Time)
	}
	if a.Src != b.Src || a.Dst != b.Dst || a.Protocol != b.Protocol {
		t.Errorf("addressing (%v %v %v) != (%v %v %v)", a.Src, a.Dst, a.Protocol, b.Src, b.Dst, b.Protocol)
	}
	var ma, mb dnswire.Message
	if err := ma.Unpack(a.Message); err != nil {
		t.Fatal(err)
	}
	if err := mb.Unpack(b.Message); err != nil {
		t.Fatal(err)
	}
	if ma.Header.ID != mb.Header.ID || ma.Question[0] != mb.Question[0] {
		t.Errorf("message mismatch: %+v vs %+v", ma, mb)
	}
	if (ma.Edns == nil) != (mb.Edns == nil) {
		t.Errorf("EDNS presence mismatch")
	} else if ma.Edns != nil && (ma.Edns.UDPSize != mb.Edns.UDPSize || ma.Edns.DO != mb.Edns.DO) {
		t.Errorf("EDNS mismatch: %+v vs %+v", ma.Edns, mb.Edns)
	}
}

func TestTextRoundTrip(t *testing.T) {
	entries := sampleEntries(t)
	var buf bytes.Buffer
	w := NewTextWriter(&buf)
	for _, e := range entries {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got := drain(t, NewTextReader(&buf))
	if len(got) != len(entries) {
		t.Fatalf("round trip %d -> %d entries", len(entries), len(got))
	}
	for i := range got {
		entriesEquivalent(t, entries[i], got[i])
	}
}

func TestTextIsEditable(t *testing.T) {
	entries := sampleEntries(t)[:1]
	var buf bytes.Buffer
	w := NewTextWriter(&buf)
	if err := w.Write(entries[0]); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	// A user edits the protocol column with a text editor: udp -> tcp.
	edited := strings.Replace(buf.String(), " udp ", " tcp ", 1)
	got := drain(t, NewTextReader(strings.NewReader(edited)))
	if len(got) != 1 || got[0].Protocol != TCP {
		t.Fatalf("edited entry = %+v", got)
	}
}

func TestTextCommentsAndBlanks(t *testing.T) {
	text := "# a comment\n\n" +
		"1461234567.000001 192.168.1.1:5353 198.41.0.4:53 udp 7 rd example.com. IN A - -\n"
	got := drain(t, NewTextReader(strings.NewReader(text)))
	if len(got) != 1 {
		t.Fatalf("entries = %d", len(got))
	}
	var m dnswire.Message
	if err := got[0].Decode(&m); err != nil {
		t.Fatal(err)
	}
	if !m.Header.RD || m.Question[0].Name != "example.com." {
		t.Errorf("message = %+v", m)
	}
}

func TestTextRejectsMalformed(t *testing.T) {
	bad := []string{
		"1461234567.000001 192.168.1.1:5353 198.41.0.4:53 udp 7 rd example.com. IN A -\n",       // 10 fields
		"notatime 192.168.1.1:5353 198.41.0.4:53 udp 7 rd example.com. IN A - -\n",              // bad time
		"1461234567.000001 192.168.1.1 198.41.0.4:53 udp 7 rd example.com. IN A - -\n",          // src missing port
		"1461234567.000001 192.168.1.1:5353 198.41.0.4:53 quic 7 rd example.com. IN A - -\n",    // bad proto
		"1461234567.000001 192.168.1.1:5353 198.41.0.4:53 udp 7 xx example.com. IN A - -\n",     // bad flag
		"1461234567.000001 192.168.1.1:5353 198.41.0.4:53 udp 7 rd example.com. IN A - do\n",    // do without EDNS
		"1461234567.000001 192.168.1.1:5353 198.41.0.4:53 udp 99999 rd example.com. IN A - -\n", // id overflow
	}
	for _, line := range bad {
		if _, err := NewTextReader(strings.NewReader(line)).Next(); err == nil {
			t.Errorf("accepted %q", line)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	entries := sampleEntries(t)
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	for _, e := range entries {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got := drain(t, NewBinaryReader(&buf))
	if len(got) != len(entries) {
		t.Fatalf("round trip %d -> %d entries", len(entries), len(got))
	}
	for i := range got {
		entriesEquivalent(t, entries[i], got[i])
		if !bytes.Equal(entries[i].Message, got[i].Message) {
			t.Errorf("entry %d: binary format must preserve exact wire bytes", i)
		}
	}
}

func TestBinaryIPv6Addresses(t *testing.T) {
	e := queryEntry(t, time.Unix(1, 0), "[2001:db8::1]:5353", "[2001:db8::53]:53", UDP, "v6.example.", dnswire.TypeAAAA, nil)
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	if err := w.Write(e); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	got := drain(t, NewBinaryReader(&buf))
	if len(got) != 1 || got[0].Src != e.Src || got[0].Dst != e.Dst {
		t.Fatalf("v6 round trip = %+v", got)
	}
}

func TestBinaryRejectsBadMagicAndTruncation(t *testing.T) {
	if _, err := NewBinaryReader(strings.NewReader("NOTMAGIC....")).Next(); err == nil {
		t.Error("bad magic accepted")
	}
	// Valid stream, then truncate mid-record.
	e := sampleEntries(t)[0]
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	w.Write(e)
	w.Flush()
	trunc := buf.Bytes()[:buf.Len()-5]
	r := NewBinaryReader(bytes.NewReader(trunc))
	if _, err := r.Next(); err == nil {
		t.Error("truncated record accepted")
	}
	// Empty stream: immediate EOF, not an error.
	if _, err := NewBinaryReader(bytes.NewReader(nil)).Next(); err != io.EOF {
		t.Errorf("empty stream: err = %v, want EOF", err)
	}
}

func TestSliceReader(t *testing.T) {
	entries := sampleEntries(t)
	r := NewSliceReader(entries)
	got := drain(t, r)
	if len(got) != len(entries) {
		t.Fatalf("%d entries", len(got))
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("err = %v, want EOF", err)
	}
	r.Reset()
	if e, err := r.Next(); err != nil || !e.Time.Equal(entries[0].Time) {
		t.Errorf("reset failed: %v %v", e, err)
	}
}

// TestQuickBinaryRoundTrip: arbitrary well-formed entries survive the
// binary format byte-exactly.
func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		entries := make([]Entry, n)
		for i := range entries {
			var src, dst netip.Addr
			if rng.Intn(2) == 0 {
				var b [4]byte
				rng.Read(b[:])
				src = netip.AddrFrom4(b)
				rng.Read(b[:])
				dst = netip.AddrFrom4(b)
			} else {
				var b [16]byte
				rng.Read(b[:])
				b[0] = 0x20
				src = netip.AddrFrom16(b)
				rng.Read(b[:])
				b[0] = 0x20
				dst = netip.AddrFrom16(b)
			}
			msg := make([]byte, 12+rng.Intn(200))
			rng.Read(msg)
			entries[i] = Entry{
				Time:     time.Unix(rng.Int63n(2_000_000_000), rng.Int63n(1_000_000_000)),
				Src:      netip.AddrPortFrom(src, uint16(rng.Intn(65536))),
				Dst:      netip.AddrPortFrom(dst, uint16(rng.Intn(65536))),
				Protocol: Protocol(rng.Intn(3)),
				Message:  msg,
			}
		}
		var buf bytes.Buffer
		w := NewBinaryWriter(&buf)
		for _, e := range entries {
			if err := w.Write(e); err != nil {
				return false
			}
		}
		w.Flush()
		got, err := ReadAll(NewBinaryReader(&buf))
		if err != nil || len(got) != len(entries) {
			return false
		}
		for i := range got {
			e, g := entries[i], got[i]
			if !e.Time.Equal(g.Time) || e.Src != g.Src || e.Dst != g.Dst ||
				e.Protocol != g.Protocol || !bytes.Equal(e.Message, g.Message) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickTextRoundTrip: any well-formed query entry survives the text
// format semantically (time to microsecond, addressing, flags, EDNS).
func TestQuickTextRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := dnswire.NewQuery(uint16(rng.Intn(1<<16)), fmt.Sprintf("q%d.example.com.", rng.Intn(1e6)), dnswire.TypeA)
		m.Header.RD = rng.Intn(2) == 0
		m.Header.CD = rng.Intn(2) == 0
		if rng.Intn(2) == 0 {
			m.Edns = &dnswire.EDNS{UDPSize: uint16(512 + rng.Intn(4096)), DO: rng.Intn(2) == 0}
		}
		wire, err := m.Pack(nil)
		if err != nil {
			return false
		}
		e := Entry{
			Time:     time.Unix(rng.Int63n(2_000_000_000), rng.Int63n(1_000_000)*1000),
			Src:      netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 1, byte(rng.Intn(256)), byte(rng.Intn(256))}), uint16(1024+rng.Intn(60000))),
			Dst:      netip.MustParseAddrPort("198.41.0.4:53"),
			Protocol: Protocol(rng.Intn(3)),
			Message:  wire,
		}
		var buf bytes.Buffer
		w := NewTextWriter(&buf)
		if err := w.Write(e); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		got, err := NewTextReader(&buf).Next()
		if err != nil {
			t.Logf("read: %v (%q)", err, buf.String())
			return false
		}
		if !got.Time.Equal(e.Time) || got.Src != e.Src || got.Dst != e.Dst || got.Protocol != e.Protocol {
			return false
		}
		var gm dnswire.Message
		if err := gm.Unpack(got.Message); err != nil {
			return false
		}
		if gm.Header.ID != m.Header.ID || gm.Header.RD != m.Header.RD || gm.Header.CD != m.Header.CD {
			return false
		}
		if (gm.Edns == nil) != (m.Edns == nil) {
			return false
		}
		if m.Edns != nil && (gm.Edns.UDPSize != m.Edns.UDPSize || gm.Edns.DO != m.Edns.DO) {
			return false
		}
		return gm.Question[0] == m.Question[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
