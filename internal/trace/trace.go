// Package trace defines LDplayer's trace model and the three input
// formats of Figure 3: raw network traces (pcap, via internal/pcap),
// human-editable plain text, and the customized binary stream of internal
// messages used for fast replay. Converters stream between them, so
// pre-processing never buffers a whole multi-gigabyte trace.
package trace

import (
	"errors"
	"io"
	"net/netip"
	"time"

	"ldplayer/internal/dnswire"
)

// Protocol is the transport a query used (or should use on replay).
type Protocol uint8

// Transport protocols.
const (
	UDP Protocol = iota
	TCP
	TLS
)

// String returns the protocol mnemonic used in the text format.
func (p Protocol) String() string {
	switch p {
	case UDP:
		return "udp"
	case TCP:
		return "tcp"
	case TLS:
		return "tls"
	}
	return "?"
}

// ParseProtocol converts a text-format protocol token.
func ParseProtocol(s string) (Protocol, bool) {
	switch s {
	case "udp":
		return UDP, true
	case "tcp":
		return TCP, true
	case "tls":
		return TLS, true
	}
	return UDP, false
}

// Entry is one DNS message event: the internal message unit that flows
// from input engine to controller to distributors to queriers.
type Entry struct {
	// Time is the capture timestamp (absolute; replay computes relative
	// offsets from the first entry).
	Time time.Time
	// Src is the original querier: source affinity and connection-reuse
	// emulation key off its address.
	Src netip.AddrPort
	// Dst is the original destination server (OQDA for recursive replay).
	Dst netip.AddrPort
	// Protocol the message used, or should use after mutation.
	Protocol Protocol
	// Message is the wire-format DNS message. Readers carve each message
	// out of fresh (or caller-owned, never-recycled) memory, so the buffer
	// is immutable once the entry is produced and downstream stages may
	// retain references to it past the entry's batch lifetime — the replay
	// retransmission path depends on this to track in-flight queries
	// without copying.
	Message []byte
}

// Clone deep-copies the entry.
func (e Entry) Clone() Entry {
	e.Message = append([]byte(nil), e.Message...)
	return e
}

// Decode unpacks the wire message into m.
func (e *Entry) Decode(m *dnswire.Message) error {
	return m.Unpack(e.Message)
}

// Reader yields trace entries in time order.
type Reader interface {
	// Next returns the next entry, or io.EOF at the end of the trace.
	Next() (Entry, error)
}

// Writer persists trace entries.
type Writer interface {
	Write(Entry) error
}

// BatchReader is implemented by readers that can decode many entries per
// call, amortizing per-record dispatch and allocation on the replay
// pre-load path. NextBatch fills dst from the front and returns the
// number of entries produced plus any error, following the io.Reader
// convention: callers must process the n entries before considering the
// error, and io.EOF is never returned alongside n > 0.
type BatchReader interface {
	Reader
	NextBatch(dst []Entry) (int, error)
}

// Partitioner is implemented by readers whose input can be split into
// independently readable shards (the LDTRC02 block index makes this a
// matter of slicing). Partition returns n readers over disjoint subsets
// of the trace, each yielding its subset in the original order, or
// ok=false when the reader cannot (or can no longer) be split. The
// replay engine uses it to give every distributor shard a private
// ingestion pipeline.
type Partitioner interface {
	Reader
	Partition(n int) ([]Reader, bool)
}

// ReadBatch fills dst from r, using the batch decode path when r provides
// one and falling back to per-entry Next calls otherwise. Same return
// convention as NextBatch.
func ReadBatch(r Reader, dst []Entry) (int, error) {
	if br, ok := r.(BatchReader); ok {
		return br.NextBatch(dst)
	}
	for i := range dst {
		e, err := r.Next()
		if err != nil {
			if errors.Is(err, io.EOF) && i > 0 {
				return i, nil
			}
			return i, err
		}
		dst[i] = e
	}
	return len(dst), nil
}

// ReadAll drains r into a slice (tests and small traces only; replay
// streams instead).
func ReadAll(r Reader) ([]Entry, error) {
	var out []Entry
	for {
		e, err := r.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return out, err
		}
		out = append(out, e)
	}
}

// SliceReader adapts an in-memory slice to the Reader interface.
type SliceReader struct {
	entries []Entry
	pos     int
}

// NewSliceReader wraps entries.
func NewSliceReader(entries []Entry) *SliceReader {
	return &SliceReader{entries: entries}
}

// Next implements Reader.
func (r *SliceReader) Next() (Entry, error) {
	if r.pos >= len(r.entries) {
		return Entry{}, io.EOF
	}
	e := r.entries[r.pos]
	r.pos++
	return e, nil
}

// NextBatch implements BatchReader.
func (r *SliceReader) NextBatch(dst []Entry) (int, error) {
	if r.pos >= len(r.entries) {
		return 0, io.EOF
	}
	n := copy(dst, r.entries[r.pos:])
	r.pos += n
	return n, nil
}

// Reset rewinds the reader for another pass.
func (r *SliceReader) Reset() { r.pos = 0 }
