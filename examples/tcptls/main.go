// Tcptls: the §5.2 what-if study. Takes a B-Root-like workload, projects
// it onto all-TCP and all-TLS (the paper's mutation), and reports server
// memory, connection counts, CPU, and client latency versus RTT — the
// quantities of Figures 11, 13, 14 and 15.
//
//	go run ./examples/tcptls
package main

import (
	"fmt"
	"log"
	"time"

	"ldplayer/internal/experiments"
)

func main() {
	sim := experiments.SimScale{
		Rate:     3000,
		Duration: 2 * time.Minute,
		Clients:  90000,
		Seed:     1,
	}
	timeouts := []time.Duration{5 * time.Second, 20 * time.Second, 40 * time.Second}

	fmt.Println("=== Figure 11: server CPU vs connection timeout ===")
	cpuRows, err := experiments.Fig11CPU(sim, timeouts)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range cpuRows {
		fmt.Println(" ", r)
	}
	fmt.Println("  (paper: original ~10%, all-TCP ~5%, all-TLS ~9-10%, flat in timeout)")

	fmt.Println("\n=== Figure 13: all-TCP server footprint ===")
	tcpRows, err := experiments.FigFootprint(sim, experiments.WorkloadAllTCP, timeouts)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range tcpRows {
		fmt.Println(" ", r)
	}

	fmt.Println("\n=== Figure 14: all-TLS server footprint ===")
	tlsRows, err := experiments.FigFootprint(sim, experiments.WorkloadAllTLS, timeouts)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range tlsRows {
		fmt.Println(" ", r)
	}
	fmt.Println("  (paper at full 39k q/s scale: 15 GB TCP / 18 GB TLS at 20 s timeout;")
	fmt.Println("   memory grows with timeout, TLS ~30% above TCP)")

	fmt.Println("\n=== Figure 15: query latency vs client RTT (20 s timeout) ===")
	latRows, err := experiments.Fig15Latency(sim, []time.Duration{
		20 * time.Millisecond, 80 * time.Millisecond, 160 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range latRows {
		fmt.Println(" ", r)
	}
	fmt.Println("  (paper: non-busy TCP ~2 RTT, TLS up to 4 RTT, UDP flat at 1 RTT)")

	fmt.Println("\n=== Figure 15c: query load per client ===")
	load, err := experiments.Fig15cClientLoad(sim)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(" ", load)
	fmt.Println("  (paper: 1% of clients carry ~75% of load; 81% send <10 queries)")
}
