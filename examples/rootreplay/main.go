// Rootreplay: the §4 validation workflow. Generates a B-Root-like trace
// (heavy-tailed clients, per-second rate variation), replays it in real
// time against a synthesized root zone, and reports the three accuracy
// metrics of Figures 6–8: per-query timing error, inter-arrival
// distribution agreement, and per-second rate agreement.
//
//	go run ./examples/rootreplay
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ldplayer/internal/core"
	"ldplayer/internal/hierarchy"
	"ldplayer/internal/metrics"
	"ldplayer/internal/traceg"
	"ldplayer/internal/zone"
)

func main() {
	// Synthesized root zone: SOA, 13 root servers, TLD delegations.
	h, err := hierarchy.Build([]string{
		"example.com.", "example.net.", "example.org.", "example.de.", "example.jp.",
	}, hierarchy.Options{})
	if err != nil {
		log.Fatal(err)
	}

	player, err := core.New(core.Config{Zones: []*zone.Zone{h.Root}})
	if err != nil {
		log.Fatal(err)
	}
	if err := player.Start(); err != nil {
		log.Fatal(err)
	}
	defer player.Close()

	cfg := traceg.BRootConfig{
		Start:       time.Now(),
		Duration:    6 * time.Second,
		MedianRate:  1500,
		Clients:     15000,
		TCPFraction: 0,
		DOFraction:  0.723,
		Seed:        1,
	}

	// Pass 1: the "original" trace — collect its per-second rates and
	// inter-arrival gaps.
	orig, err := traceg.BRoot(cfg)
	if err != nil {
		log.Fatal(err)
	}
	origRates := metrics.NewRateCounter(time.Second)
	var origGaps []float64
	var prev time.Time
	n := 0
	for {
		e, err := orig.Next()
		if err != nil {
			break
		}
		origRates.Add(e.Time)
		if n > 0 {
			origGaps = append(origGaps, e.Time.Sub(prev).Seconds())
		}
		prev = e.Time
		n++
	}

	// Pass 2: replay the identical trace (same seed) in real time.
	replayIn, err := traceg.BRoot(cfg)
	if err != nil {
		log.Fatal(err)
	}
	report, err := player.Replay(context.Background(), replayIn)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== B-Root-like replay validation ===")
	fmt.Printf("trace: %d queries, %d clients, %.0f q/s median\n",
		report.Sent, report.Sources, cfg.MedianRate)

	fmt.Println("\nFigure 6 — query timing error:")
	fmt.Printf("  quartiles %+.2f / %+.2f / %+.2f ms (paper: within ±2.5 ms)\n",
		report.TimingError.P25*1000, report.TimingError.P50*1000, report.TimingError.P75*1000)

	fmt.Println("\nFigure 7 — inter-arrival agreement:")
	oc, rc := metrics.NewCDF(origGaps), metrics.NewCDF(report.SendInterArrivals)
	for _, q := range []float64{0.25, 0.5, 0.75, 0.9} {
		fmt.Printf("  p%.0f: original %.6fs, replay %.6fs\n", q*100, oc.InverseAt(q), rc.InverseAt(q))
	}

	fmt.Println("\nFigure 8 — per-second rate agreement:")
	diffs := metrics.RelativeDifferences(trim(origRates.Rates()), trim(report.SendRates))
	dc := metrics.NewCDF(diffs)
	within := dc.At(0.01) - dc.At(-0.0100001)
	fmt.Printf("  %.0f%% of seconds within ±1%% (p5 %+.3f%%, p95 %+.3f%%)\n",
		within*100, dc.InverseAt(0.05)*100, dc.InverseAt(0.95)*100)
}

func trim(r []float64) []float64 {
	if len(r) <= 2 {
		return nil
	}
	return r[1 : len(r)-1]
}
