// Quickstart: generate a small synthetic trace, stand up an in-process
// authoritative server for a wildcard zone, replay the trace against it
// with real timing over UDP, and print the replay report.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"ldplayer/internal/core"
	"ldplayer/internal/traceg"
	"ldplayer/internal/zone"
)

const zoneText = `
example.com.	3600	IN	SOA	ns1.example.com. host. 1 7200 3600 1209600 300
example.com.	3600	IN	NS	ns1.example.com.
ns1.example.com.	3600	IN	A	192.0.2.1
*.example.com.	300	IN	A	192.0.2.81
`

func main() {
	// A zone with a wildcard answers every synthetic query (§4.1: "we
	// setup the server to host names in example.com with wildcards").
	z, err := zone.Parse(strings.NewReader(zoneText), "example.com.")
	if err != nil {
		log.Fatal(err)
	}

	player, err := core.New(core.Config{
		Zones:          []*zone.Zone{z},
		MatchResponses: true, // match responses by unique query name
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := player.Start(); err != nil {
		log.Fatal(err)
	}
	defer player.Close()

	// 2 seconds of queries at 10 ms fixed inter-arrival (syn-2 style),
	// anchored at the current wall time for live replay.
	gen, err := traceg.Synthetic(traceg.SyntheticConfig{
		InterArrival: 10 * time.Millisecond,
		Duration:     2 * time.Second,
		Clients:      25,
		Start:        time.Now(),
	})
	if err != nil {
		log.Fatal(err)
	}

	report, err := player.Replay(context.Background(), gen)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== LDplayer quickstart ===")
	fmt.Printf("queries sent:        %d (from %d sources)\n", report.Sent, report.Sources)
	fmt.Printf("responses received:  %d\n", report.Responses)
	fmt.Printf("replay timing error: median %+.3f ms (quartiles %+.3f / %+.3f ms)\n",
		report.TimingError.P50*1000, report.TimingError.P25*1000, report.TimingError.P75*1000)
	fmt.Printf("query latency:       median %.3f ms, p95 %.3f ms\n",
		report.Latency.P50*1000, report.Latency.P95*1000)
	fmt.Printf("server counters:     %d queries, %d response bytes\n",
		report.ServerStats.Queries, report.ServerStats.ResponseBytes)
}
