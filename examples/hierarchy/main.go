// Hierarchy: a live demonstration of §2.4's meta-DNS-server (Figure 2).
// One authoritative engine hosts root, TLD and SLD zones behind
// split-horizon views; a recursive resolver on a virtual network sends
// queries to the *public* nameserver addresses; the recursive and
// authoritative proxies rewrite packet addresses so every query lands on
// the single server and every answer appears to come from the server the
// resolver asked — a full cold-cache hierarchy walk without a packet
// leaving the process.
//
//	go run ./examples/hierarchy
package main

import (
	"context"
	"fmt"
	"log"
	"net/netip"

	"ldplayer/internal/authserver"
	"ldplayer/internal/dnswire"
	"ldplayer/internal/hierarchy"
	"ldplayer/internal/netsim"
	"ldplayer/internal/proxy"
	"ldplayer/internal/resolver"
)

func main() {
	// The emulated hierarchy: root + com/org TLDs + three SLD zones.
	h, err := hierarchy.Build([]string{"example.com.", "iana.org.", "isi.edu."}, hierarchy.Options{})
	if err != nil {
		log.Fatal(err)
	}
	engine := authserver.NewEngine()
	for _, v := range h.Views() {
		if err := engine.AddView(v); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("meta-DNS-server: %d zones behind %d split-horizon views\n",
		len(h.Zones()), len(h.Views()))

	// The virtual network: a recursive node and the meta server node.
	recAddr := netip.MustParseAddr("10.1.0.1")
	metaAddr := netip.MustParseAddr("10.2.0.1")
	n := netsim.New(0)
	defer n.Close()
	recNode, err := n.AddNode("recursive", recAddr)
	if err != nil {
		log.Fatal(err)
	}
	metaNode, err := n.AddNode("meta-dns", metaAddr)
	if err != nil {
		log.Fatal(err)
	}

	// Figure 2's proxies: port-53 egress capture plus OQDA rewriting.
	recProxy := proxy.Attach(recNode, n, proxy.CaptureQueries, metaAddr, proxy.Options{})
	defer recProxy.Close()
	authProxy := proxy.Attach(metaNode, n, proxy.CaptureResponses, recAddr, proxy.Options{})
	defer authProxy.Close()
	authserver.AttachNetsim(engine, metaNode)

	r, err := resolver.New(resolver.Config{
		Roots:     h.NSAddrs["."][:3],
		Exchanger: resolver.NewNetsimExchanger(recNode, recAddr),
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, name := range []string{"www.example.com.", "www.iana.org.", "mail.isi.edu.", "www.example.com."} {
		ans, err := r.Resolve(context.Background(), name, dnswire.TypeA)
		if err != nil {
			log.Fatal(err)
		}
		addr := "?"
		if len(ans.Records) > 0 {
			addr = ans.Records[len(ans.Records)-1].Data.String()
		}
		fmt.Printf("%-20s -> %-15s (%d upstream queries%s)\n",
			name, addr, ans.Upstream, cacheNote(ans.Upstream))
	}

	fmt.Printf("\nrecursive proxy captured %d queries; authoritative proxy %d responses\n",
		recProxy.Stats().Captured, authProxy.Stats().Captured)
	fmt.Printf("packets leaked out of the testbed: %d\n", n.Dropped())
	st := engine.Stats()
	fmt.Printf("meta server answered %d queries (%d bytes)\n", st.Queries, st.ResponseBytes)
}

func cacheNote(upstream int) string {
	if upstream == 0 {
		return ", pure cache hit"
	}
	return ""
}
