// Dnssec: the §5.1 what-if study. Signs the synthesized root zone with
// 1024- and 2048-bit ZSKs (and a rollover variant), replays the
// B-Root-like workload with the current 72.3% DO mix and with every query
// requesting DNSSEC, and reports response bandwidth — Figure 10.
//
//	go run ./examples/dnssec
package main

import (
	"fmt"
	"log"
	"time"

	"ldplayer/internal/experiments"
)

func main() {
	sim := experiments.SimScale{
		Rate:     3000,
		Duration: 90 * time.Second,
		Clients:  60000,
		Seed:     1,
	}
	rows, err := experiments.Fig10DNSSEC(sim)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== Figure 10: response bandwidth under DNSSEC what-ifs ===")
	for _, r := range rows {
		fmt.Println(" ", r)
	}

	// Headline ratios the paper calls out.
	find := func(label string) float64 {
		for _, r := range rows {
			if r.Label == label {
				return r.Bandwidth.P50
			}
		}
		return 0
	}
	doGrowth := find("100%DO zsk2048")/find("72.3%DO zsk2048") - 1
	keyGrowth := find("72.3%DO zsk2048")/find("72.3%DO zsk1024") - 1
	fmt.Printf("\n72.3%%→100%% DO traffic growth: %+.1f%%  (paper: +31%%)\n", doGrowth*100)
	fmt.Printf("1024→2048-bit ZSK growth:     %+.1f%%  (paper: +32%%)\n", keyGrowth*100)
}
