// Package ldplayer is a from-scratch Go reproduction of LDplayer, the DNS
// experimentation framework of Zhu and Heidemann ("LDplayer: DNS
// Experimentation at Scale"). The implementation lives under internal/
// (see DESIGN.md for the system inventory); cmd/ holds the executables,
// examples/ the runnable walkthroughs, and bench_test.go in this
// directory regenerates every data-bearing table and figure of the
// paper's evaluation.
package ldplayer
